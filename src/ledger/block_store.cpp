#include "ledger/block_store.h"

#include <algorithm>

#include "common/check.h"
#include "common/serialize.h"
#include "crypto/sha256.h"

namespace themis::ledger {

namespace {

constexpr std::uint32_t kRecordMagic = 0x544d4253;  // "SBMT"
constexpr std::uint32_t kIndexMagic = 0x58444954;   // "TIDX"
constexpr std::uint32_t kIndexVersion = 1;
// height u64 | id 32B | offset u64 | length u32 | crc u32
constexpr std::size_t kIndexEntrySize = 56;
constexpr std::size_t kIndexHeaderSize = 8;

/// Record layout: magic(4) | length(4) | payload | checksum(4).
/// The checksum is the first 4 bytes of sha256d(payload).
std::uint32_t checksum_of(ByteSpan payload) {
  const Hash32 digest = crypto::sha256d(payload);
  return static_cast<std::uint32_t>(digest[0]) |
         (static_cast<std::uint32_t>(digest[1]) << 8) |
         (static_cast<std::uint32_t>(digest[2]) << 16) |
         (static_cast<std::uint32_t>(digest[3]) << 24);
}

}  // namespace

BlockStore::BlockStore(std::filesystem::path path) : path_(std::move(path)) {
  expects(!std::filesystem::is_directory(path_),
          "block store path must be a file");
  if (!std::filesystem::exists(path_)) {
    std::ofstream(path_, std::ios::binary).flush();
  }
  load_or_rebuild();
  open_files();
}

void BlockStore::open_files() {
  writer_.open(path_, std::ios::binary | std::ios::in | std::ios::out);
  ensures(writer_.is_open(), "failed to open block store for writing");
  // Position after the last *valid* record: a torn tail is overwritten.
  writer_.seekp(static_cast<std::streamoff>(valid_bytes_));
  reader_.open(path_, std::ios::binary);
  ensures(reader_.is_open(), "failed to open block store for reading");
  index_writer_.open(index_path(),
                     std::ios::binary | std::ios::in | std::ios::out);
  ensures(index_writer_.is_open(), "failed to open block index for writing");
  index_writer_.seekp(static_cast<std::streamoff>(
      kIndexHeaderSize + records_.size() * kIndexEntrySize));
}

void BlockStore::load_or_rebuild() {
  if (try_load_index()) {
    opened_from_index_ = true;
    return;
  }
  // Index missing, stale, or inconsistent with the data file: fall back to
  // the full payload scan and rebuild the index from what it finds.
  opened_from_index_ = false;
  records_.clear();
  by_id_.clear();
  recovered_ = false;
  valid_bytes_ = scan_from(0);
  write_index_file();
}

std::uint64_t BlockStore::scan_from(std::uint64_t start_offset) {
  std::ifstream in(path_, std::ios::binary);
  ensures(in.is_open(), "failed to open block store for scanning");

  const std::uint64_t file_size = std::filesystem::file_size(path_);
  std::uint64_t offset = start_offset;
  while (offset + 8 <= file_size) {
    std::uint8_t header[8];
    in.seekg(static_cast<std::streamoff>(offset));
    in.read(reinterpret_cast<char*>(header), 8);
    if (!in.good()) break;
    Reader r(ByteSpan(header, 8));
    const std::uint32_t magic = r.u32();
    const std::uint32_t length = r.u32();
    if (magic != kRecordMagic || offset + 8 + length + 4 > file_size) {
      recovered_ = true;  // torn or corrupt tail: stop here
      break;
    }
    Bytes payload(length);
    in.read(reinterpret_cast<char*>(payload.data()), length);
    std::uint8_t check_raw[4];
    in.read(reinterpret_cast<char*>(check_raw), 4);
    if (!in.good()) {
      recovered_ = true;
      break;
    }
    Reader cr(ByteSpan(check_raw, 4));
    if (cr.u32() != checksum_of(payload)) {
      recovered_ = true;
      break;
    }
    Record record;
    record.offset = offset + 8;
    record.length = length;
    try {
      const Block block = Block::decode(payload);
      record.height = block.height();
      record.id = block.id();
    } catch (const DecodeError&) {
      recovered_ = true;  // checksummed but undecodable: treat as corrupt
      break;
    }
    records_.push_back(record);
    by_id_.emplace(record.id, records_.size() - 1);
    offset += 8 + length + 4;
  }
  if (offset < file_size) recovered_ = true;
  return offset;
}

bool BlockStore::try_load_index() {
  const std::filesystem::path idx = index_path();
  std::error_code ec;
  if (!std::filesystem::is_regular_file(idx, ec) || ec) return false;
  std::ifstream in(idx, std::ios::binary);
  if (!in.is_open()) return false;
  const std::uint64_t idx_size = std::filesystem::file_size(idx, ec);
  if (ec || idx_size < kIndexHeaderSize) return false;
  Bytes data(idx_size);
  in.read(reinterpret_cast<char*>(data.data()),
          static_cast<std::streamsize>(idx_size));
  if (!in.good()) return false;

  {
    Reader header(ByteSpan(data.data(), kIndexHeaderSize));
    if (header.u32() != kIndexMagic) return false;
    if (header.u32() != kIndexVersion) return false;
  }

  const std::uint64_t file_size = std::filesystem::file_size(path_, ec);
  if (ec) return false;

  records_.clear();
  by_id_.clear();
  recovered_ = false;
  bool rewrite = false;

  std::uint64_t expected_offset = 8;  // first payload starts past one header
  std::size_t pos = kIndexHeaderSize;
  while (pos + kIndexEntrySize <= idx_size) {
    const ByteSpan entry(data.data() + pos, kIndexEntrySize);
    Reader r(entry);
    Record record;
    record.height = r.u64();
    record.id = r.hash();
    record.offset = r.u64();
    record.length = r.u32();
    const std::uint32_t crc = r.u32();
    if (crc != checksum_of(ByteSpan(entry.data(), kIndexEntrySize - 4))) {
      return false;  // corrupt index entry: rebuild everything
    }
    // The index must describe a contiguous record chain inside the data
    // file; any divergence (truncated data, stale index) forces a rescan.
    if (record.offset != expected_offset ||
        record.offset + record.length + 4 > file_size) {
      return false;
    }
    by_id_.emplace(record.id, records_.size());
    records_.push_back(record);
    expected_offset = record.offset + record.length + 4 + 8;
    pos += kIndexEntrySize;
  }
  if (pos != idx_size) rewrite = true;  // torn trailing index entry

  valid_bytes_ =
      records_.empty() ? 0 : expected_offset - 8;  // end of the last record

  // Spot-check the final record's payload checksum so a stale index cannot
  // vouch for data that was since corrupted in place at the tail.
  if (!records_.empty()) {
    std::ifstream din(path_, std::ios::binary);
    if (!din.is_open()) return false;
    const Record& last = records_.back();
    Bytes payload(last.length);
    din.seekg(static_cast<std::streamoff>(last.offset));
    din.read(reinterpret_cast<char*>(payload.data()), last.length);
    std::uint8_t check_raw[4];
    din.read(reinterpret_cast<char*>(check_raw), 4);
    if (!din.good()) return false;
    Reader cr(ByteSpan(check_raw, 4));
    if (cr.u32() != checksum_of(payload)) return false;
  }

  // Records appended after the index was last written are recovered by
  // scanning just the tail.
  if (valid_bytes_ < file_size) {
    const std::size_t before = records_.size();
    valid_bytes_ = scan_from(valid_bytes_);
    if (records_.size() != before) rewrite = true;
  }
  if (rewrite) write_index_file();
  return true;
}

void BlockStore::write_index_file() const {
  Writer w(kIndexHeaderSize + records_.size() * kIndexEntrySize);
  w.u32(kIndexMagic);
  w.u32(kIndexVersion);
  for (const Record& record : records_) {
    Writer entry(kIndexEntrySize);
    entry.u64(record.height);
    entry.hash(record.id);
    entry.u64(record.offset);
    entry.u32(record.length);
    entry.u32(checksum_of(entry.buffer()));
    w.raw(entry.buffer());
  }
  const std::filesystem::path tmp = index_path().string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    ensures(out.is_open(), "failed to write block index");
    out.write(reinterpret_cast<const char*>(w.buffer().data()),
              static_cast<std::streamsize>(w.size()));
    out.flush();
    ensures(out.good(), "block index write failed");
  }
  std::filesystem::rename(tmp, index_path());
}

void BlockStore::append_index_entry(const Record& record) {
  Writer entry(kIndexEntrySize);
  entry.u64(record.height);
  entry.hash(record.id);
  entry.u64(record.offset);
  entry.u32(record.length);
  entry.u32(checksum_of(entry.buffer()));
  index_writer_.write(reinterpret_cast<const char*>(entry.buffer().data()),
                      static_cast<std::streamsize>(entry.size()));
  index_writer_.flush();
  ensures(index_writer_.good(), "block index append failed");
}

void BlockStore::append(const Block& block) {
  const Bytes payload = block.encode();
  Writer w(payload.size() + 16);
  w.u32(kRecordMagic);
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.raw(payload);
  w.u32(checksum_of(payload));
  const Bytes& record_bytes = w.buffer();

  writer_.write(reinterpret_cast<const char*>(record_bytes.data()),
                static_cast<std::streamsize>(record_bytes.size()));
  writer_.flush();
  ensures(writer_.good(), "block store write failed");

  Record record;
  record.offset = valid_bytes_ + 8;
  record.length = static_cast<std::uint32_t>(payload.size());
  record.height = block.height();
  record.id = block.id();
  by_id_.emplace(record.id, records_.size());
  records_.push_back(record);
  valid_bytes_ += record_bytes.size();
  append_index_entry(record);
}

Block BlockStore::read(std::size_t index) const {
  expects(index < records_.size(), "block index out of range");
  const Record& record = records_[index];
  Bytes payload(record.length);
  reader_.clear();
  reader_.seekg(static_cast<std::streamoff>(record.offset));
  reader_.read(reinterpret_cast<char*>(payload.data()), record.length);
  ensures(reader_.good(), "block store read failed");
  return Block::decode(payload);
}

std::vector<Block> BlockStore::read_all() const {
  std::vector<Block> out;
  out.reserve(records_.size());
  for (std::size_t i = 0; i < records_.size(); ++i) out.push_back(read(i));
  return out;
}

std::uint64_t BlockStore::height_at(std::size_t index) const {
  expects(index < records_.size(), "block index out of range");
  return records_[index].height;
}

const BlockHash& BlockStore::id_at(std::size_t index) const {
  expects(index < records_.size(), "block index out of range");
  return records_[index].id;
}

std::optional<std::size_t> BlockStore::find(const BlockHash& id) const {
  const auto it = by_id_.find(id);
  if (it == by_id_.end()) return std::nullopt;
  return it->second;
}

std::optional<Block> BlockStore::read_by_id(const BlockHash& id) const {
  const auto index = find(id);
  if (!index.has_value()) return std::nullopt;
  return read(*index);
}

std::optional<std::uint64_t> BlockStore::min_height() const {
  std::optional<std::uint64_t> out;
  for (const Record& record : records_) {
    if (!out.has_value() || record.height < *out) out = record.height;
  }
  return out;
}

std::optional<std::uint64_t> BlockStore::max_height() const {
  std::optional<std::uint64_t> out;
  for (const Record& record : records_) {
    if (!out.has_value() || record.height > *out) out = record.height;
  }
  return out;
}

BlockStore::Cursor::Cursor(const BlockStore& store, std::size_t first,
                           std::size_t limit)
    : store_(store), index_(first), limit_(limit) {
  in_.open(store.path_, std::ios::binary);
  ensures(in_.is_open(), "failed to open block store cursor");
  if (index_ < limit_) {
    in_.seekg(static_cast<std::streamoff>(store.records_[index_].offset));
  }
}

std::optional<Block> BlockStore::Cursor::next() {
  if (index_ >= limit_) return std::nullopt;
  const Record& record = store_.records_[index_];
  Bytes payload(record.length);
  in_.read(reinterpret_cast<char*>(payload.data()), record.length);
  // Consume the trailing checksum plus the next record's header so the
  // stream stays sequential (open verified every checksum, or the index
  // vouches for records it already validated).
  char skip[12];
  in_.read(skip, index_ + 1 < limit_ ? 12 : 4);
  ensures(in_.good() || index_ + 1 >= limit_, "block store cursor read failed");
  ++index_;
  return Block::decode(payload);
}

BlockStore::Cursor BlockStore::stream(std::size_t first,
                                      std::size_t count) const {
  expects(first <= records_.size(), "cursor start out of range");
  const std::size_t limit =
      count > records_.size() - first ? records_.size() : first + count;
  return Cursor(*this, first, limit);
}

std::size_t BlockStore::replay_into(BlockTree& tree,
                                    std::uint64_t min_height) const {
  std::size_t attached = 0;
  if (min_height == 0) {
    Cursor cursor = stream();
    while (auto block = cursor.next()) {
      auto ptr = std::make_shared<const Block>(*std::move(block));
      if (tree.insert(std::move(ptr)) == BlockTree::InsertResult::inserted) {
        ++attached;
      }
    }
    return attached;
  }
  // Snapshot-restart path: skip pruned-prefix survivors via the index; only
  // records at or above the floor are decoded.
  for (std::size_t i = 0; i < records_.size(); ++i) {
    if (records_[i].height < min_height) continue;
    auto ptr = std::make_shared<const Block>(read(i));
    if (tree.insert(std::move(ptr)) == BlockTree::InsertResult::inserted) {
      ++attached;
    }
  }
  return attached;
}

std::size_t BlockStore::prune_below(std::uint64_t height) {
  const std::size_t removed = static_cast<std::size_t>(
      std::count_if(records_.begin(), records_.end(),
                    [&](const Record& r) { return r.height < height; }));
  if (removed == 0) return 0;

  const std::filesystem::path tmp = path_.string() + ".tmp";
  std::vector<Record> kept;
  kept.reserve(records_.size() - removed);
  std::uint64_t offset = 0;
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    ensures(out.is_open(), "failed to open prune temp file");
    for (const Record& record : records_) {
      if (record.height < height) continue;
      Bytes payload(record.length);
      reader_.clear();
      reader_.seekg(static_cast<std::streamoff>(record.offset));
      reader_.read(reinterpret_cast<char*>(payload.data()), record.length);
      ensures(reader_.good(), "block store read failed during prune");
      Writer w(payload.size() + 16);
      w.u32(kRecordMagic);
      w.u32(record.length);
      w.raw(payload);
      w.u32(checksum_of(payload));
      out.write(reinterpret_cast<const char*>(w.buffer().data()),
                static_cast<std::streamsize>(w.size()));
      Record moved = record;
      moved.offset = offset + 8;
      kept.push_back(moved);
      offset += 8 + record.length + 4;
    }
    out.flush();
    ensures(out.good(), "prune rewrite failed");
  }

  writer_.close();
  reader_.close();
  index_writer_.close();
  std::filesystem::rename(tmp, path_);

  records_ = std::move(kept);
  by_id_.clear();
  for (std::size_t i = 0; i < records_.size(); ++i) {
    by_id_.emplace(records_[i].id, i);
  }
  valid_bytes_ = offset;
  recovered_ = false;
  write_index_file();
  open_files();
  return removed;
}

}  // namespace themis::ledger
