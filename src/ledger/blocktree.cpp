#include "ledger/blocktree.h"

#include <algorithm>

#include "common/check.h"
#include "common/stats.h"

namespace themis::ledger {

BlockTree::BlockTree() : BlockTree(std::make_shared<const Block>(Block::genesis())) {}

BlockTree::BlockTree(BlockPtr genesis) {
  expects(genesis != nullptr, "genesis must not be null");
  expects(genesis->height() == 0, "genesis must have height 0");
  genesis_hash_ = genesis->id();
  Entry e;
  e.block = std::move(genesis);
  e.receipt_seq = next_receipt_seq_++;
  entries_.emplace(genesis_hash_, std::move(e));
}

BlockTree::InsertResult BlockTree::insert(BlockPtr block) {
  expects(block != nullptr, "block must not be null");
  const BlockHash id = block->id();
  const BlockHash parent_id = block->header().prev;

  // One probe serves as both the duplicate check and the slot reservation;
  // the placeholder is filled by attach() or erased on the orphan path.
  const auto [slot, inserted] = entries_.try_emplace(id);
  if (!inserted) return InsertResult::duplicate;

  const auto parent_it = entries_.find(parent_id);
  if (parent_it == entries_.end()) {
    entries_.erase(slot);
    auto& waiting = orphans_[parent_id];
    const bool already_waiting =
        std::any_of(waiting.begin(), waiting.end(),
                    [&](const BlockPtr& b) { return b->id() == id; });
    if (!already_waiting) waiting.push_back(std::move(block));
    return InsertResult::orphaned;
  }

  attach(std::move(block), parent_it->second, slot->second);
  if (orphans_.empty()) return InsertResult::inserted;

  // Pull in any orphan chains this block unblocked (breadth-first).
  std::vector<BlockHash> ready{id};
  while (!ready.empty()) {
    const BlockHash next = ready.back();
    ready.pop_back();
    const auto it = orphans_.find(next);
    if (it == orphans_.end()) continue;
    std::vector<BlockPtr> waiting = std::move(it->second);
    orphans_.erase(it);
    for (BlockPtr& w : waiting) {
      const BlockHash wid = w->id();
      Entry& wparent = entries_.at(w->header().prev);
      const auto [wslot, winserted] = entries_.try_emplace(wid);
      if (winserted) {
        attach(std::move(w), wparent, wslot->second);
        ready.push_back(wid);
      }
    }
  }
  return InsertResult::inserted;
}

void BlockTree::attach(BlockPtr block, Entry& parent_entry, Entry& e) {
  const BlockHash id = block->id();
  ensures(block->height() == parent_entry.height + 1,
          "child height must be parent height + 1");
  parent_entry.children.push_back(id);

  const std::uint64_t h = block->height();
  const NodeId producer = block->producer();

  e.parent = block->header().prev;
  e.parent_entry = &parent_entry;
  e.receipt_seq = next_receipt_seq_++;
  e.height = h;
  e.subtree_size = 1;
  e.subtree_max_height = h;
  max_height_ = std::max(max_height_, h);
  e.block = std::move(block);

  // Incremental propagation: every ancestor's subtree gained this block.
  // Tracked equality statistics along the path absorb the producer and drop
  // their cached variance.  The walk stops below the aggregate floor —
  // those caches freeze and cold queries recompute against the frontier.
  for (Entry* a = &parent_entry;
       a != nullptr && a->height >= aggregate_floor_; a = a->parent_entry) {
    ++a->subtree_size;
    if (a->subtree_max_height < h) a->subtree_max_height = h;
    if (EqualityStats* eq = a->equality; eq != nullptr) {
      if (producer < equality_n_nodes_) {
        ++eq->counts[producer];
        ++eq->total;
        eq->variance_valid = false;
      }
    }
  }
}

const BlockTree::Entry& BlockTree::entry(const BlockHash& id) const {
  const auto it = entries_.find(id);
  expects(it != entries_.end(), "block not in tree");
  return it->second;
}

BlockPtr BlockTree::block(const BlockHash& id) const {
  const auto it = entries_.find(id);
  return it == entries_.end() ? nullptr : it->second.block;
}

const std::vector<BlockHash>& BlockTree::children(const BlockHash& id) const {
  return entry(id).children;
}

std::optional<BlockHash> BlockTree::parent(const BlockHash& id) const {
  const Entry& e = entry(id);
  if (id == genesis_hash_) return std::nullopt;
  return e.parent;
}

std::uint64_t BlockTree::height(const BlockHash& id) const {
  return entry(id).height;
}

std::uint64_t BlockTree::receipt_seq(const BlockHash& id) const {
  return entry(id).receipt_seq;
}

std::uint64_t BlockTree::subtree_size(const BlockHash& id) const {
  const Entry& e = entry(id);
  if (e.height >= aggregate_floor_) return e.subtree_size;
  return cold_subtree_size(e);
}

std::uint64_t BlockTree::subtree_max_height(const BlockHash& id) const {
  const Entry& e = entry(id);
  if (e.height >= aggregate_floor_) return e.subtree_max_height;
  return cold_subtree_max_height(e);
}

std::uint64_t BlockTree::cold_subtree_size(const Entry& root) const {
  std::uint64_t total = 0;
  dfs_scratch_.clear();
  dfs_scratch_.push_back(&root);
  while (!dfs_scratch_.empty()) {
    const Entry* cur = dfs_scratch_.back();
    dfs_scratch_.pop_back();
    ++total;
    for (const BlockHash& child : cur->children) {
      const Entry& c = entry(child);
      if (c.height >= aggregate_floor_) {
        total += c.subtree_size;  // still maintained, hence exact
      } else {
        dfs_scratch_.push_back(&c);
      }
    }
  }
  return total;
}

std::uint64_t BlockTree::cold_subtree_max_height(const Entry& root) const {
  std::uint64_t best = root.height;
  dfs_scratch_.clear();
  dfs_scratch_.push_back(&root);
  while (!dfs_scratch_.empty()) {
    const Entry* cur = dfs_scratch_.back();
    dfs_scratch_.pop_back();
    best = std::max(best, cur->height);
    for (const BlockHash& child : cur->children) {
      const Entry& c = entry(child);
      if (c.height >= aggregate_floor_) {
        best = std::max(best, c.subtree_max_height);
      } else {
        dfs_scratch_.push_back(&c);
      }
    }
  }
  return best;
}

BlockTree::EqualityStats& BlockTree::equality_stats(const Entry& e,
                                                    const BlockHash& id,
                                                    std::size_t n_nodes) const {
  expects(n_nodes >= 1, "equality statistics need the consensus-set size");
  if (equality_n_nodes_ != n_nodes) {
    // Tracked width changed (e.g. a rule with a different consensus-set
    // size): flush everything and re-track on demand.
    for (const auto& [eid, ent] : entries_) ent.equality = nullptr;
    equality_.clear();
    equality_n_nodes_ = n_nodes;
  }
  if (e.equality != nullptr) return *e.equality;

  // First query for this subtree: materialize exact counts with one DFS,
  // then keep them current via the insert-time root-path walk.
  EqualityStats& eq = equality_[id];
  eq.counts.assign(n_nodes, 0);
  eq.total = 0;
  eq.variance_valid = false;
  dfs_scratch_.clear();
  dfs_scratch_.push_back(&e);
  while (!dfs_scratch_.empty()) {
    const Entry* cur = dfs_scratch_.back();
    dfs_scratch_.pop_back();
    const NodeId producer = cur->block->producer();
    if (producer < n_nodes) {
      ++eq.counts[producer];
      ++eq.total;
    }
    for (const BlockHash& child : cur->children) {
      dfs_scratch_.push_back(&entry(child));
    }
  }
  e.equality = &eq;
  return eq;
}

double BlockTree::subtree_equality_variance(const BlockHash& id,
                                            std::size_t n_nodes) const {
  const Entry& e = entry(id);
  if (e.height < aggregate_floor_) {
    // The incremental walk no longer feeds statistics frozen below the
    // floor; recompute from scratch.  Identical integer counts feed the
    // same arithmetic, so this stays bit-identical to the hot path.
    subtree_producer_counts(id, n_nodes, counts_scratch_);
    std::uint64_t total = 0;
    for (const std::uint64_t c : counts_scratch_) total += c;
    return frequency_variance_noalloc(counts_scratch_,
                                      static_cast<double>(total));
  }
  EqualityStats& eq = equality_stats(e, id, n_nodes);
  if (!eq.variance_valid) {
    eq.variance = frequency_variance_noalloc(eq.counts,
                                             static_cast<double>(eq.total));
    eq.variance_valid = true;
  }
  return eq.variance;
}

std::vector<std::uint64_t> BlockTree::subtree_producer_counts(
    const BlockHash& id, std::size_t n_nodes) const {
  std::vector<std::uint64_t> counts;
  subtree_producer_counts(id, n_nodes, counts);
  return counts;
}

void BlockTree::subtree_producer_counts(const BlockHash& id,
                                        std::size_t n_nodes,
                                        std::vector<std::uint64_t>& out) const {
  out.assign(n_nodes, 0);
  dfs_scratch_.clear();
  dfs_scratch_.push_back(&entry(id));
  while (!dfs_scratch_.empty()) {
    const Entry* cur = dfs_scratch_.back();
    dfs_scratch_.pop_back();
    const NodeId producer = cur->block->producer();
    if (producer < n_nodes) ++out[producer];
    for (const BlockHash& child : cur->children) {
      dfs_scratch_.push_back(&entry(child));
    }
  }
}

std::vector<BlockHash> BlockTree::chain_to(const BlockHash& head) const {
  std::vector<BlockHash> chain;
  BlockHash cur = head;
  for (;;) {
    chain.push_back(cur);
    if (cur == genesis_hash_) break;
    cur = entry(cur).parent;
  }
  std::reverse(chain.begin(), chain.end());
  return chain;
}

bool BlockTree::is_ancestor(const BlockHash& ancestor,
                            const BlockHash& descendant) const {
  const std::uint64_t target_height = height(ancestor);
  BlockHash cur = descendant;
  const Entry* e = &entry(cur);
  while (e->height > target_height) {
    cur = e->parent;
    e = e->parent_entry;
  }
  return cur == ancestor;
}

BlockHash BlockTree::lowest_common_ancestor(const BlockHash& a,
                                            const BlockHash& b) const {
  BlockHash ia = a;
  BlockHash ib = b;
  const Entry* ea = &entry(ia);
  const Entry* eb = &entry(ib);
  while (ea->height > eb->height) {
    ia = ea->parent;
    ea = ea->parent_entry;
  }
  while (eb->height > ea->height) {
    ib = eb->parent;
    eb = eb->parent_entry;
  }
  while (ea != eb) {
    ia = ea->parent;
    ea = ea->parent_entry;
    ib = eb->parent;
    eb = eb->parent_entry;
  }
  return ia;
}

std::vector<BlockHash> BlockTree::tips() const {
  std::vector<BlockHash> out;
  for (const auto& [id, e] : entries_) {
    if (e.children.empty()) out.push_back(id);
  }
  return out;
}

std::size_t BlockTree::orphan_count() const {
  std::size_t count = 0;
  for (const auto& [parent, waiting] : orphans_) count += waiting.size();
  return count;
}

}  // namespace themis::ledger
