#include "ledger/blocktree.h"

#include <algorithm>

#include "common/check.h"

namespace themis::ledger {

BlockTree::BlockTree() : BlockTree(std::make_shared<const Block>(Block::genesis())) {}

BlockTree::BlockTree(BlockPtr genesis) {
  expects(genesis != nullptr, "genesis must not be null");
  expects(genesis->height() == 0, "genesis must have height 0");
  genesis_hash_ = genesis->id();
  Entry e;
  e.block = std::move(genesis);
  e.receipt_seq = next_receipt_seq_++;
  entries_.emplace(genesis_hash_, std::move(e));
}

BlockTree::InsertResult BlockTree::insert(BlockPtr block) {
  expects(block != nullptr, "block must not be null");
  const BlockHash id = block->id();
  if (entries_.contains(id)) return InsertResult::duplicate;

  const BlockHash parent_id = block->header().prev;
  if (!entries_.contains(parent_id)) {
    auto& waiting = orphans_[parent_id];
    const bool already_waiting =
        std::any_of(waiting.begin(), waiting.end(),
                    [&](const BlockPtr& b) { return b->id() == id; });
    if (!already_waiting) waiting.push_back(std::move(block));
    return InsertResult::orphaned;
  }

  attach(std::move(block));

  // Pull in any orphan chains this block unblocked (breadth-first).
  std::vector<BlockHash> ready{id};
  while (!ready.empty()) {
    const BlockHash next = ready.back();
    ready.pop_back();
    const auto it = orphans_.find(next);
    if (it == orphans_.end()) continue;
    std::vector<BlockPtr> waiting = std::move(it->second);
    orphans_.erase(it);
    for (BlockPtr& w : waiting) {
      const BlockHash wid = w->id();
      if (!entries_.contains(wid)) {
        attach(std::move(w));
        ready.push_back(wid);
      }
    }
  }
  return InsertResult::inserted;
}

void BlockTree::attach(BlockPtr block) {
  const BlockHash id = block->id();
  const BlockHash parent_id = block->header().prev;
  Entry& parent_entry = entries_.at(parent_id);
  ensures(block->height() == parent_entry.block->height() + 1,
          "child height must be parent height + 1");
  parent_entry.children.push_back(id);

  Entry e;
  e.parent = parent_id;
  e.receipt_seq = next_receipt_seq_++;
  max_height_ = std::max(max_height_, block->height());
  e.block = std::move(block);
  entries_.emplace(id, std::move(e));
}

const BlockTree::Entry& BlockTree::entry(const BlockHash& id) const {
  const auto it = entries_.find(id);
  expects(it != entries_.end(), "block not in tree");
  return it->second;
}

BlockPtr BlockTree::block(const BlockHash& id) const {
  const auto it = entries_.find(id);
  return it == entries_.end() ? nullptr : it->second.block;
}

const std::vector<BlockHash>& BlockTree::children(const BlockHash& id) const {
  return entry(id).children;
}

std::optional<BlockHash> BlockTree::parent(const BlockHash& id) const {
  const Entry& e = entry(id);
  if (id == genesis_hash_) return std::nullopt;
  return e.parent;
}

std::uint64_t BlockTree::height(const BlockHash& id) const {
  return entry(id).block->height();
}

std::uint64_t BlockTree::receipt_seq(const BlockHash& id) const {
  return entry(id).receipt_seq;
}

std::uint64_t BlockTree::subtree_size(const BlockHash& id) const {
  std::uint64_t count = 0;
  std::vector<const Entry*> stack{&entry(id)};
  while (!stack.empty()) {
    const Entry* cur = stack.back();
    stack.pop_back();
    ++count;
    for (const BlockHash& child : cur->children) stack.push_back(&entry(child));
  }
  return count;
}

std::vector<std::uint64_t> BlockTree::subtree_producer_counts(
    const BlockHash& id, std::size_t n_nodes) const {
  std::vector<std::uint64_t> counts(n_nodes, 0);
  std::vector<const Entry*> stack{&entry(id)};
  while (!stack.empty()) {
    const Entry* cur = stack.back();
    stack.pop_back();
    const NodeId producer = cur->block->producer();
    if (producer < n_nodes) ++counts[producer];
    for (const BlockHash& child : cur->children) stack.push_back(&entry(child));
  }
  return counts;
}

std::vector<BlockHash> BlockTree::chain_to(const BlockHash& head) const {
  std::vector<BlockHash> chain;
  BlockHash cur = head;
  for (;;) {
    chain.push_back(cur);
    if (cur == genesis_hash_) break;
    cur = entry(cur).parent;
  }
  std::reverse(chain.begin(), chain.end());
  return chain;
}

bool BlockTree::is_ancestor(const BlockHash& ancestor,
                            const BlockHash& descendant) const {
  const std::uint64_t target_height = height(ancestor);
  BlockHash cur = descendant;
  while (height(cur) > target_height) cur = entry(cur).parent;
  return cur == ancestor;
}

std::vector<BlockHash> BlockTree::tips() const {
  std::vector<BlockHash> out;
  for (const auto& [id, e] : entries_) {
    if (e.children.empty()) out.push_back(id);
  }
  return out;
}

std::size_t BlockTree::orphan_count() const {
  std::size_t count = 0;
  for (const auto& [parent, waiting] : orphans_) count += waiting.size();
  return count;
}

}  // namespace themis::ledger
