#include "ledger/blocktree.h"

#include <algorithm>

#include "common/check.h"
#include "common/stats.h"

namespace themis::ledger {

namespace {

/// splitmix64 finalizer — the standard bijective mixer.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return x;
}

/// Fingerprint term for "producer p reached count c" (p, c < 2^32 by
/// construction: p indexes the consensus set, c counts blocks).
constexpr std::uint64_t fp_term(std::uint64_t seed, NodeId p,
                                std::uint64_t c) {
  return mix64(seed ^ ((static_cast<std::uint64_t>(p) << 32) | c));
}

constexpr std::uint64_t kFpSeedLo = 0x8E2F1D4B9C6A5E37ull;
constexpr std::uint64_t kFpSeedHi = 0x51C7A9E3F0B82D61ull;

/// Memoized frequency_variance_noalloc over the fingerprint: a pure-function
/// cache, so a hit returns the bit-identical double the caller would have
/// computed (the fingerprint pins the exact dense counts vector including
/// its length).  thread_local because trials run one per thread; within a
/// trial every simulated node keeps its own tree, and they all query the
/// same subtree contents — this is where the n-fold redundancy dies.  The
/// second half of the fingerprint is stored with the value so a slot
/// collision on the key half degrades to a recompute, never a wrong answer
/// (up to the 2^-128 full collision).  Only a miss pays the Θ(n_nodes)
/// densification of the sparse counts.
template <typename Stats>
double memoized_frequency_variance(const Stats& eq, std::size_t n_nodes,
                                   std::vector<std::uint64_t>& dense_scratch) {
  struct Slot {
    std::uint64_t fp_hi;
    double value;
  };
  thread_local std::unordered_map<std::uint64_t, Slot> memo;
  const std::uint64_t key = eq.fp_lo ^ mix64(kFpSeedLo ^ n_nodes);
  const std::uint64_t check = eq.fp_hi ^ mix64(kFpSeedHi ^ n_nodes);
  const auto it = memo.find(key);
  if (it != memo.end() && it->second.fp_hi == check) return it->second.value;
  dense_scratch.assign(n_nodes, 0);
  for (const auto& [p, c] : eq.counts) dense_scratch[p] = c;
  const double v =
      frequency_variance_noalloc(dense_scratch, static_cast<double>(eq.total));
  if (memo.size() >= (1u << 22)) memo.clear();  // bound long-process growth
  memo[key] = Slot{check, v};
  return v;
}

}  // namespace

BlockTree::BlockTree() : BlockTree(std::make_shared<const Block>(Block::genesis())) {}

BlockTree::BlockTree(BlockPtr genesis) {
  expects(genesis != nullptr, "genesis must not be null");
  // The root is usually the network genesis (height 0), but a node restoring
  // from a state snapshot re-roots its tree at the snapshot block: everything
  // below it is pruned, and the StateManager base carries the state at the
  // root inclusive.
  genesis_hash_ = genesis->id();
  const std::uint64_t root_height = genesis->height();
  // Head off the rehash cascade as chains grow (hundreds of simulated trees
  // each rehashing several times adds up); ~2 KB when the tree stays tiny.
  index_.reserve(256);
  index_.emplace(genesis_hash_, 0);
  Hot root{};
  root.height = root_height;
  root.subtree_max_height = root_height;
  hot_.push_back(root);
  max_height_ = root_height;
  Cold c;
  c.block = std::move(genesis);
  c.id = genesis_hash_;
  c.receipt_seq = next_receipt_seq_++;
  cold_.push_back(std::move(c));
}

std::uint32_t BlockTree::index_of(const BlockHash& id) const {
  const auto it = index_.find(id);
  expects(it != index_.end(), "block not in tree");
  return it->second;
}

BlockTree::InsertResult BlockTree::insert(BlockPtr block) {
  expects(block != nullptr, "block must not be null");
  const BlockHash id = block->id();
  const BlockHash parent_id = block->header().prev;

  // One probe serves as both the duplicate check and the slot reservation;
  // the index is claimed by attach() or the reservation erased on the orphan
  // path.
  const auto [slot, inserted] =
      index_.try_emplace(id, static_cast<std::uint32_t>(hot_.size()));
  if (!inserted) return InsertResult::duplicate;

  const auto parent_it = index_.find(parent_id);
  if (parent_it == index_.end()) {
    index_.erase(slot);
    auto& waiting = orphans_[parent_id];
    const bool already_waiting =
        std::any_of(waiting.begin(), waiting.end(),
                    [&](const BlockPtr& b) { return b->id() == id; });
    if (!already_waiting) waiting.push_back(std::move(block));
    return InsertResult::orphaned;
  }

  attach(std::move(block), parent_it->second, slot->second);
  if (orphans_.empty()) return InsertResult::inserted;

  // Pull in any orphan chains this block unblocked (breadth-first).
  std::vector<BlockHash> ready{id};
  while (!ready.empty()) {
    const BlockHash next = ready.back();
    ready.pop_back();
    const auto it = orphans_.find(next);
    if (it == orphans_.end()) continue;
    std::vector<BlockPtr> waiting = std::move(it->second);
    orphans_.erase(it);
    for (BlockPtr& w : waiting) {
      const BlockHash wid = w->id();
      const std::uint32_t wparent = index_.at(w->header().prev);
      const auto [wslot, winserted] =
          index_.try_emplace(wid, static_cast<std::uint32_t>(hot_.size()));
      if (winserted) {
        attach(std::move(w), wparent, wslot->second);
        ready.push_back(wid);
      }
    }
  }
  return InsertResult::inserted;
}

void BlockTree::attach(BlockPtr block, std::uint32_t parent,
                       std::uint32_t idx) {
  ensures(block->height() == hot_[parent].height + 1,
          "child height must be parent height + 1");
  ensures(idx == hot_.size(), "attach must claim the next index");
  const BlockHash id = block->id();
  cold_[parent].children.push_back(id);

  const std::uint64_t h = block->height();
  const NodeId producer = block->producer();

  Hot hot;
  hot.height = h;
  hot.subtree_max_height = h;
  hot.parent = parent;
  hot_.push_back(hot);
  Cold cold;
  cold.block = std::move(block);
  cold.id = id;
  cold.parent = cold_[parent].id;
  cold.receipt_seq = next_receipt_seq_++;
  cold_.push_back(std::move(cold));
  max_height_ = std::max(max_height_, h);

  // Incremental propagation: every ancestor's subtree gained this block.
  // Tracked equality statistics along the path absorb the producer and drop
  // their cached variance.  The walk stops below the aggregate floor —
  // those caches freeze and cold queries recompute against the frontier.
  for (std::uint32_t a = parent; a != kNoIndex;) {
    Hot& ah = hot_[a];
    if (ah.height < aggregate_floor_) break;
    ++ah.subtree_size;
    if (ah.subtree_max_height < h) ah.subtree_max_height = h;
    if (ah.equality != kNoIndex && producer < equality_n_nodes_) {
      EqualityStats& eq = equality_pool_[ah.equality];
      const std::uint32_t c = eq.bump(producer);
      ++eq.total;
      eq.fp_lo += fp_term(kFpSeedLo, producer, c);
      eq.fp_hi += fp_term(kFpSeedHi, producer, c);
      eq.variance_valid = false;
    }
    a = ah.parent;
  }
}

BlockPtr BlockTree::block(const BlockHash& id) const {
  const auto it = index_.find(id);
  return it == index_.end() ? nullptr : cold_[it->second].block;
}

const std::vector<BlockHash>& BlockTree::children(const BlockHash& id) const {
  return cold_[index_of(id)].children;
}

std::optional<BlockHash> BlockTree::parent(const BlockHash& id) const {
  const std::uint32_t idx = index_of(id);
  if (idx == 0) return std::nullopt;  // genesis
  return cold_[idx].parent;
}

std::uint64_t BlockTree::height(const BlockHash& id) const {
  return hot_[index_of(id)].height;
}

std::uint64_t BlockTree::receipt_seq(const BlockHash& id) const {
  return cold_[index_of(id)].receipt_seq;
}

std::uint64_t BlockTree::subtree_size(const BlockHash& id) const {
  const std::uint32_t idx = index_of(id);
  if (hot_[idx].height >= aggregate_floor_) return hot_[idx].subtree_size;
  return cold_subtree_size(idx);
}

std::uint64_t BlockTree::subtree_max_height(const BlockHash& id) const {
  const std::uint32_t idx = index_of(id);
  if (hot_[idx].height >= aggregate_floor_) return hot_[idx].subtree_max_height;
  return cold_subtree_max_height(idx);
}

std::uint64_t BlockTree::cold_subtree_size(std::uint32_t root) const {
  std::uint64_t total = 0;
  dfs_scratch_.clear();
  dfs_scratch_.push_back(root);
  while (!dfs_scratch_.empty()) {
    const std::uint32_t cur = dfs_scratch_.back();
    dfs_scratch_.pop_back();
    ++total;
    for (const BlockHash& child : cold_[cur].children) {
      const std::uint32_t c = index_of(child);
      if (hot_[c].height >= aggregate_floor_) {
        total += hot_[c].subtree_size;  // still maintained, hence exact
      } else {
        dfs_scratch_.push_back(c);
      }
    }
  }
  return total;
}

std::uint64_t BlockTree::cold_subtree_max_height(std::uint32_t root) const {
  std::uint64_t best = hot_[root].height;
  dfs_scratch_.clear();
  dfs_scratch_.push_back(root);
  while (!dfs_scratch_.empty()) {
    const std::uint32_t cur = dfs_scratch_.back();
    dfs_scratch_.pop_back();
    best = std::max(best, hot_[cur].height);
    for (const BlockHash& child : cold_[cur].children) {
      const std::uint32_t c = index_of(child);
      if (hot_[c].height >= aggregate_floor_) {
        best = std::max(best, hot_[c].subtree_max_height);
      } else {
        dfs_scratch_.push_back(c);
      }
    }
  }
  return best;
}

BlockTree::EqualityStats& BlockTree::equality_stats(std::uint32_t idx,
                                                    std::size_t n_nodes) const {
  expects(n_nodes >= 1, "equality statistics need the consensus-set size");
  if (equality_n_nodes_ != n_nodes) {
    // Tracked width changed (e.g. a rule with a different consensus-set
    // size): flush everything and re-track on demand.
    for (Hot& h : hot_) h.equality = kNoIndex;
    equality_pool_.clear();
    equality_free_.clear();
    equality_n_nodes_ = n_nodes;
  }
  if (hot_[idx].equality != kNoIndex) return equality_pool_[hot_[idx].equality];

  // First query for this subtree: materialize exact counts with one DFS,
  // then keep them current via the insert-time root-path walk.  Recycle a
  // slot retired by the floor advance when one is available.
  std::uint32_t slot;
  if (!equality_free_.empty()) {
    slot = equality_free_.back();
    equality_free_.pop_back();
    EqualityStats& reused = equality_pool_[slot];
    reused.counts.clear();
    reused.total = 0;
    reused.variance_valid = false;
    reused.fp_lo = 0;
    reused.fp_hi = 0;
  } else {
    slot = static_cast<std::uint32_t>(equality_pool_.size());
    equality_pool_.emplace_back();
  }
  EqualityStats& eq = equality_pool_[slot];
  eq.owner = idx;
  dfs_scratch_.clear();
  dfs_scratch_.push_back(idx);
  while (!dfs_scratch_.empty()) {
    const std::uint32_t cur = dfs_scratch_.back();
    dfs_scratch_.pop_back();
    const NodeId producer = cold_[cur].block->producer();
    if (producer < n_nodes) {
      const std::uint32_t c = eq.bump(producer);
      ++eq.total;
      eq.fp_lo += fp_term(kFpSeedLo, producer, c);
      eq.fp_hi += fp_term(kFpSeedHi, producer, c);
    }
    for (const BlockHash& child : cold_[cur].children) {
      dfs_scratch_.push_back(index_of(child));
    }
  }
  hot_[idx].equality = slot;
  return eq;
}

void BlockTree::set_aggregate_floor(std::uint64_t height) {
  if (height <= aggregate_floor_) return;
  aggregate_floor_ = height;
  // Retire statistics for subtrees that sank below the floor: the insert
  // walk no longer feeds them, so they would only go stale — and each one
  // pins memory.  Queries down there recompute cold.
  for (std::uint32_t i = 0;
       i < static_cast<std::uint32_t>(equality_pool_.size()); ++i) {
    EqualityStats& eq = equality_pool_[i];
    if (eq.owner == kNoIndex || hot_[eq.owner].height >= aggregate_floor_) {
      continue;
    }
    hot_[eq.owner].equality = kNoIndex;
    eq.owner = kNoIndex;
    eq.counts.clear();
    eq.counts.shrink_to_fit();
    equality_free_.push_back(i);
  }
}

double BlockTree::subtree_equality_variance(const BlockHash& id,
                                            std::size_t n_nodes) const {
  const std::uint32_t idx = index_of(id);
  if (hot_[idx].height < aggregate_floor_) {
    // The incremental walk no longer feeds statistics frozen below the
    // floor; recompute from scratch.  Identical integer counts feed the
    // same arithmetic, so this stays bit-identical to the hot path.
    subtree_producer_counts(id, n_nodes, counts_scratch_);
    std::uint64_t total = 0;
    for (const std::uint64_t c : counts_scratch_) total += c;
    return frequency_variance_noalloc(counts_scratch_,
                                      static_cast<double>(total));
  }
  EqualityStats& eq = equality_stats(idx, n_nodes);
  if (!eq.variance_valid) {
    eq.variance = memoized_frequency_variance(eq, n_nodes, counts_scratch_);
    eq.variance_valid = true;
  }
  return eq.variance;
}

std::vector<std::uint64_t> BlockTree::subtree_producer_counts(
    const BlockHash& id, std::size_t n_nodes) const {
  std::vector<std::uint64_t> counts;
  subtree_producer_counts(id, n_nodes, counts);
  return counts;
}

void BlockTree::subtree_producer_counts(const BlockHash& id,
                                        std::size_t n_nodes,
                                        std::vector<std::uint64_t>& out) const {
  out.assign(n_nodes, 0);
  dfs_scratch_.clear();
  dfs_scratch_.push_back(index_of(id));
  while (!dfs_scratch_.empty()) {
    const std::uint32_t cur = dfs_scratch_.back();
    dfs_scratch_.pop_back();
    const NodeId producer = cold_[cur].block->producer();
    if (producer < n_nodes) ++out[producer];
    for (const BlockHash& child : cold_[cur].children) {
      dfs_scratch_.push_back(index_of(child));
    }
  }
}

std::vector<BlockHash> BlockTree::chain_to(const BlockHash& head) const {
  std::vector<BlockHash> chain;
  std::uint32_t cur = index_of(head);
  for (;;) {
    chain.push_back(cold_[cur].id);
    if (cur == 0) break;  // genesis
    cur = hot_[cur].parent;
  }
  std::reverse(chain.begin(), chain.end());
  return chain;
}

bool BlockTree::is_ancestor(const BlockHash& ancestor,
                            const BlockHash& descendant) const {
  const std::uint32_t target = index_of(ancestor);
  const std::uint64_t target_height = hot_[target].height;
  std::uint32_t cur = index_of(descendant);
  while (hot_[cur].height > target_height) cur = hot_[cur].parent;
  return cur == target;
}

BlockHash BlockTree::lowest_common_ancestor(const BlockHash& a,
                                            const BlockHash& b) const {
  std::uint32_t ia = index_of(a);
  std::uint32_t ib = index_of(b);
  while (hot_[ia].height > hot_[ib].height) ia = hot_[ia].parent;
  while (hot_[ib].height > hot_[ia].height) ib = hot_[ib].parent;
  while (ia != ib) {
    ia = hot_[ia].parent;
    ib = hot_[ib].parent;
  }
  return cold_[ia].id;
}

std::vector<BlockHash> BlockTree::tips() const {
  std::vector<BlockHash> out;
  for (const Cold& c : cold_) {
    if (c.children.empty()) out.push_back(c.id);
  }
  return out;
}

std::size_t BlockTree::orphan_count() const {
  std::size_t count = 0;
  for (const auto& [parent, waiting] : orphans_) count += waiting.size();
  return count;
}

}  // namespace themis::ledger
