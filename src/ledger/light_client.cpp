#include "ledger/light_client.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/uint256.h"

namespace themis::ledger {

HeaderChain::HeaderChain() {
  const Block& genesis = Block::genesis();
  genesis_hash_ = genesis.id();
  best_tip_ = genesis_hash_;
  headers_.emplace(genesis_hash_, Entry{genesis.header(), 0.0});
}

HeaderChain::AcceptResult HeaderChain::submit(const BlockHeader& header) {
  const BlockHash id = header.hash();
  if (headers_.contains(id)) return AcceptResult::duplicate;

  const auto parent = headers_.find(header.prev);
  if (parent == headers_.end()) return AcceptResult::unknown_parent;
  if (header.height != parent->second.header.height + 1) {
    return AcceptResult::bad_height;
  }
  if (!std::isfinite(header.difficulty) ||
      header.difficulty < difficulty_floor_) {
    return AcceptResult::bad_pow;
  }
  if (!satisfies_target(id, target_for_difficulty(header.difficulty))) {
    return AcceptResult::bad_pow;
  }

  Entry entry{header, parent->second.total_work + header.difficulty};
  const double best_work = entry_at(best_tip_).total_work;
  const bool better = entry.total_work > best_work;
  headers_.emplace(id, std::move(entry));
  if (better) best_tip_ = id;
  return AcceptResult::accepted;
}

std::optional<BlockHeader> HeaderChain::header(const BlockHash& id) const {
  const auto it = headers_.find(id);
  if (it == headers_.end()) return std::nullopt;
  return it->second.header;
}

const HeaderChain::Entry& HeaderChain::entry_at(const BlockHash& id) const {
  const auto it = headers_.find(id);
  expects(it != headers_.end(), "unknown header");
  return it->second;
}

std::uint64_t HeaderChain::best_height() const {
  return entry_at(best_tip_).header.height;
}

std::vector<BlockHash> HeaderChain::best_chain() const {
  std::vector<BlockHash> chain;
  BlockHash cursor = best_tip_;
  for (;;) {
    chain.push_back(cursor);
    if (cursor == genesis_hash_) break;
    cursor = entry_at(cursor).header.prev;
  }
  std::reverse(chain.begin(), chain.end());
  return chain;
}

bool HeaderChain::verify_inclusion(const BlockHash& id, const TxId& txid,
                                   const crypto::MerkleProof& proof) const {
  const auto it = headers_.find(id);
  if (it == headers_.end()) return false;
  return crypto::merkle_verify(txid, proof, it->second.header.merkle_root);
}

bool HeaderChain::verify_commitment(const Hash32& leaf,
                                    const crypto::MerkleProof& proof,
                                    const Hash32& root) {
  return crypto::merkle_verify(leaf, proof, root);
}

}  // namespace themis::ledger
