// Transaction-pool <-> main-chain reconciliation across head changes.
//
// The pool and the chain each hold half the transaction lifecycle:
//
//   submit -> pool -> (mined into a block) -> confirmed on the main chain
//                 ^                                     |
//                 +--------- reorg abandons the block --+
//
// PoolReconciler owns the confirmed-transaction index (tx id -> containing
// main-chain block) and keeps it — and the pool — consistent when fork choice
// moves the head:
//
//   * blocks that joined the main chain confirm their transactions: they are
//     indexed and removed from the pool;
//   * blocks abandoned by a reorg un-confirm theirs: any transaction not
//     re-confirmed on the new branch RE-ENTERS the pool (no transaction is
//     lost), with its admission signature recomputed from the deterministic
//     consortium key (bit-identical to the original, see SignedTransaction);
//   * transactions whose nonce the new main chain has already consumed can
//     never apply again and are dropped from the pool (no transaction is
//     double-applied or left to rot).
//
// The reconciler is NOT thread-safe on its own; the consensus node drives it
// under its consensus lock, which also orders it against fork choice.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>

#include "ledger/blocktree.h"
#include "ledger/txpool.h"
#include "state/ledger_state.h"

namespace themis::state {

class PoolReconciler {
 public:
  struct Stats {
    std::uint64_t confirmed = 0;  ///< txs newly confirmed on the main chain
    std::uint64_t returned = 0;   ///< abandoned-branch txs re-added to the pool
    std::uint64_t purged = 0;     ///< pool txs dropped as permanently stale
  };

  /// Incorporate a head move `old_head` -> `new_head` (both in `tree`).
  /// `new_state` is the ledger state at `new_head`; it drives the staleness
  /// purge.  Returns per-call deltas (also accumulated into totals()).
  Stats on_head_change(const ledger::BlockTree& tree,
                       const ledger::BlockHash& old_head,
                       const ledger::BlockHash& new_head,
                       ledger::TxPool& pool, const LedgerState& new_state);

  /// Rebuild the index from scratch for the chain ending at `head` (after a
  /// block-store replay at startup).
  void rebuild(const ledger::BlockTree& tree, const ledger::BlockHash& head);

  /// Invoked for every transaction newly confirmed by on_head_change (after
  /// the index insert, before the pool removal), under the caller's lock —
  /// the live node stamps TxStage::confirmed here.  One hook; set before use.
  void set_confirm_hook(std::function<void(const ledger::TxId&)> hook) {
    confirm_hook_ = std::move(hook);
  }

  /// Main-chain block containing `id`, if the transaction is confirmed.
  std::optional<ledger::BlockHash> block_of(const ledger::TxId& id) const;

  /// Raise the hard-finality floor (monotone; from the checkpoint overlay).
  /// Confirmations in blocks on the finalized chain — ancestors (inclusive)
  /// of the certified checkpoint — are immutable: a head change can never
  /// un-confirm them.  HeadTracker already refuses reorgs that diverge below
  /// finality, so this is defense in depth; note a forced finality switch
  /// still un-confirms an abandoned heavier branch correctly, because its
  /// blocks are not ancestors of the certified checkpoint whatever their
  /// heights.
  void set_finalized(std::uint64_t height, const ledger::BlockHash& block) {
    if (height > finalized_height_) {
      finalized_height_ = height;
      finalized_block_ = block;
    }
  }
  std::uint64_t finalized_height() const { return finalized_height_; }

  std::size_t indexed() const { return confirmed_in_.size(); }
  const Stats& totals() const { return totals_; }

 private:
  std::unordered_map<ledger::TxId, ledger::BlockHash, Hash32Hasher>
      confirmed_in_;
  Stats totals_;
  std::uint64_t finalized_height_ = 0;
  ledger::BlockHash finalized_block_{};
  std::function<void(const ledger::TxId&)> confirm_hook_;
};

}  // namespace themis::state
