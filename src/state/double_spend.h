// Double-spend detection and removal evidence (§IV-C).
//
// Under strict nonce discipline, two *distinct* transactions from the same
// sender with the same nonce can never both be honest — whichever chain they
// landed on, the sender equivocated.  A DoubleSpendProof packages the two
// transactions; any member can verify it offline and attach it to a
// NodeSetContract removal proposal ("launching double-spending attacks").
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "ledger/block.h"

namespace themis::state {

struct DoubleSpendProof {
  ledger::Transaction first;
  ledger::Transaction second;

  /// Self-consistency: same sender, same nonce, different transaction ids.
  bool valid() const;

  /// Human-readable evidence string for a NodeSetContract proposal.
  std::string describe() const;

  Bytes encode() const;
  static std::optional<DoubleSpendProof> decode(ByteSpan raw);
};

/// Scan two transaction lists (e.g. two competing blocks) for an
/// equivocation; returns the first proof found.
std::optional<DoubleSpendProof> find_double_spend(
    const std::vector<ledger::Transaction>& a,
    const std::vector<ledger::Transaction>& b);

/// Scan a single list for internal nonce reuse.
std::optional<DoubleSpendProof> find_double_spend(
    const std::vector<ledger::Transaction>& txs);

}  // namespace themis::state
