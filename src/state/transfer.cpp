#include "state/transfer.h"

#include "common/serialize.h"

namespace themis::state {

namespace {
// Domain tag so arbitrary payloads don't accidentally parse as transfers.
constexpr std::uint32_t kTransferMagic = 0x74584654;  // "TFXt"
}  // namespace

Bytes Transfer::encode() const {
  Writer w(16 + memo.size());
  w.u32(kTransferMagic);
  w.u32(to);
  w.u64(amount);
  w.bytes(memo);
  return w.take();
}

std::optional<Transfer> Transfer::decode(ByteSpan payload) {
  try {
    Reader r(payload);
    if (r.u32() != kTransferMagic) return std::nullopt;
    Transfer t;
    t.to = r.u32();
    t.amount = r.u64();
    t.memo = r.bytes();
    r.expect_done();
    return t;
  } catch (const DecodeError&) {
    return std::nullopt;
  }
}

ledger::Transaction make_transfer_tx(ledger::NodeId from, std::uint64_t nonce,
                                     std::int64_t timestamp_nanos,
                                     const Transfer& transfer) {
  return ledger::Transaction(from, nonce, timestamp_nanos, transfer.encode());
}

std::optional<Transfer> transfer_of(const ledger::Transaction& tx) {
  return Transfer::decode(tx.payload());
}

}  // namespace themis::state
