#include "state/transfer.h"

#include "common/serialize.h"

namespace themis::state {

namespace {
// Domain tags so arbitrary payloads don't accidentally parse as transfers.
// v1 carries a 64-bit amount; v2 carries a full 128-bit amount.
constexpr std::uint32_t kTransferMagic = 0x74584654;    // "TFXt"
constexpr std::uint32_t kTransferMagicV2 = 0x32584654;  // "TFX2"
}  // namespace

Bytes Transfer::encode() const {
  Writer w(24 + memo.size());
  if (amount.fits_u64()) {
    w.u32(kTransferMagic);
    w.u32(to);
    w.u64(amount.lo());
  } else {
    w.u32(kTransferMagicV2);
    w.u32(to);
    w.u64(amount.lo());
    w.u64(amount.hi());
  }
  w.bytes(memo);
  return w.take();
}

std::optional<Transfer> Transfer::decode(ByteSpan payload) {
  try {
    Reader r(payload);
    const std::uint32_t magic = r.u32();
    if (magic != kTransferMagic && magic != kTransferMagicV2) {
      return std::nullopt;
    }
    Transfer t;
    t.to = r.u32();
    const std::uint64_t lo = r.u64();
    std::uint64_t hi = 0;
    if (magic == kTransferMagicV2) {
      hi = r.u64();
      // Canonical-form rule: a 64-bit amount must use v1, so every amount
      // has exactly one valid payload encoding.
      if (hi == 0) return std::nullopt;
    }
    t.amount = UInt128(hi, lo);
    t.memo = r.bytes();
    r.expect_done();
    return t;
  } catch (const DecodeError&) {
    return std::nullopt;
  }
}

ledger::Transaction make_transfer_tx(ledger::NodeId from, std::uint64_t nonce,
                                     std::int64_t timestamp_nanos,
                                     const Transfer& transfer) {
  return ledger::Transaction(from, nonce, timestamp_nanos, transfer.encode());
}

std::optional<Transfer> transfer_of(const ledger::Transaction& tx) {
  return Transfer::decode(tx.payload());
}

}  // namespace themis::state
