// Value-transfer payloads.
//
// The ledger's canonical transactions carry an opaque payload; consortium
// applications that move value encode a Transfer into it.  A transaction
// whose payload does not parse as a transfer is treated as a data-only
// transaction (no state effect beyond nonce tracking).
//
// Amounts are 128-bit.  To keep every transfer's canonical encoding unique
// (transaction ids hash the payload), an amount that fits 64 bits MUST use
// the v1 layout and a wider amount MUST use the v2 layout; decode rejects a
// v2 payload whose high limb is zero.
#pragma once

#include <cstdint>
#include <optional>

#include "common/uint128.h"
#include "ledger/transaction.h"
#include "ledger/types.h"

namespace themis::state {

struct Transfer {
  ledger::NodeId to = ledger::kNoNode;
  UInt128 amount;
  /// Free-form memo carried alongside the transfer.
  Bytes memo;

  Bytes encode() const;
  static std::optional<Transfer> decode(ByteSpan payload);

  bool operator==(const Transfer&) const = default;
};

/// Convenience: build a canonical transaction carrying a transfer.
ledger::Transaction make_transfer_tx(ledger::NodeId from, std::uint64_t nonce,
                                     std::int64_t timestamp_nanos,
                                     const Transfer& transfer);

/// Parse the transfer out of a transaction, if it carries one.
std::optional<Transfer> transfer_of(const ledger::Transaction& tx);

}  // namespace themis::state
