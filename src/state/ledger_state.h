// Account-based ledger state ("ledger processing", §VII-A).
//
// Consortium members hold accounts; transfers move balances, and every
// transaction advances its sender's nonce.  Nonce reuse is the on-chain
// definition of a double-spend attempt — the evidence a NodeSetContract
// removal proposal carries (§IV-C).
//
// StateManager materializes the state at any block by replaying the main
// chain, caching snapshots per block so switching between forks (as fork
// choice does) costs one block's delta in the common case.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string_view>
#include <unordered_map>

#include "ledger/blocktree.h"
#include "state/transfer.h"

namespace themis::state {

struct Account {
  std::uint64_t balance = 0;
  /// Highest transaction nonce seen from this account (0 = none yet).
  std::uint64_t next_nonce = 1;

  bool operator==(const Account&) const = default;
};

enum class TxOutcome {
  applied,          ///< state updated
  data_only,        ///< no transfer payload; nonce advanced
  bad_nonce,        ///< nonce reuse or gap (double-spend evidence!)
  insufficient_funds,
  unknown_recipient,
};

std::string_view to_string(TxOutcome outcome);

class LedgerState {
 public:
  LedgerState() = default;

  /// Credit an account at genesis (consortium funding allocation).
  void fund(ledger::NodeId account, std::uint64_t amount);

  const Account& account(ledger::NodeId id) const;
  std::uint64_t balance(ledger::NodeId id) const { return account(id).balance; }
  std::uint64_t total_supply() const;

  /// Apply one transaction.  Strict nonce discipline: the transaction's nonce
  /// must equal the sender's next_nonce.  Failed transactions do not change
  /// any balance (and do not advance the nonce).
  TxOutcome apply(const ledger::Transaction& tx);

  /// Apply every transaction of a block, in order.  Returns the number that
  /// applied cleanly; failures are skipped (they stay visible to auditors via
  /// apply()'s outcome when re-checked individually).
  std::size_t apply_block(const ledger::Block& block);

  bool operator==(const LedgerState&) const = default;

 private:
  std::map<ledger::NodeId, Account> accounts_;
};

class StateManager {
 public:
  /// `genesis_allocation` funds accounts before any block executes.
  StateManager(std::map<ledger::NodeId, std::uint64_t> genesis_allocation);

  /// State after executing the main chain from genesis to `block` (inclusive)
  /// in `tree`.  Snapshots are cached per block hash.
  const LedgerState& state_at(const ledger::BlockTree& tree,
                              const ledger::BlockHash& block);

  std::size_t cached_snapshots() const { return cache_.size(); }

 private:
  LedgerState genesis_state_;
  std::unordered_map<ledger::BlockHash, LedgerState, Hash32Hasher> cache_;
};

}  // namespace themis::state
