// Account-based ledger state ("ledger processing", §VII-A).
//
// Consortium members hold accounts; transfers move balances, and every
// transaction advances its sender's nonce.  Nonce reuse is the on-chain
// definition of a double-spend attempt — the evidence a NodeSetContract
// removal proposal carries (§IV-C).
//
// StateManager materializes the state at any block by replaying the main
// chain, caching snapshots per block so switching between forks (as fork
// choice does) costs one block's delta in the common case.
//
// Validation-time delta caching: block validation replays the body once on a
// ScratchState overlay and records the touched-account post-images as a
// StateDelta.  When StateManager later needs that block's snapshot it applies
// the delta — a handful of account writes — instead of decoding and replaying
// every transaction a second time.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "ledger/blocktree.h"
#include "state/transfer.h"

namespace themis::state {

struct Account {
  std::uint64_t balance = 0;
  /// Highest transaction nonce seen from this account (0 = none yet).
  std::uint64_t next_nonce = 1;

  bool operator==(const Account&) const = default;
};

enum class TxOutcome {
  applied,          ///< state updated
  data_only,        ///< no transfer payload; nonce advanced
  bad_nonce,        ///< nonce reuse or gap (double-spend evidence!)
  insufficient_funds,
  unknown_recipient,
};

std::string_view to_string(TxOutcome outcome);

/// Post-images of every account a block's body touched, in account order.
/// Applying a delta to the block's parent state yields the block's state.
struct StateDelta {
  std::vector<std::pair<ledger::NodeId, Account>> accounts;
  /// Transactions that applied cleanly (mirrors apply_block's return).
  std::size_t applied = 0;

  bool operator==(const StateDelta&) const = default;
};

class LedgerState {
 public:
  LedgerState() = default;

  /// Credit an account at genesis (consortium funding allocation).
  void fund(ledger::NodeId account, std::uint64_t amount);

  const Account& account(ledger::NodeId id) const;
  std::uint64_t balance(ledger::NodeId id) const { return account(id).balance; }
  std::uint64_t total_supply() const;

  /// Apply one transaction.  Strict nonce discipline: the transaction's nonce
  /// must equal the sender's next_nonce.  Failed transactions do not change
  /// any balance (and do not advance the nonce).
  TxOutcome apply(const ledger::Transaction& tx);

  /// Apply every transaction of a block, in order.  Returns the number that
  /// applied cleanly; failures are skipped (they stay visible to auditors via
  /// apply()'s outcome when re-checked individually).
  std::size_t apply_block(const ledger::Block& block);

  /// Overwrite the touched accounts with a recorded delta's post-images —
  /// equivalent to apply_block on the block the delta was recorded from, but
  /// without decoding or replaying any transaction.
  void apply_delta(const StateDelta& delta);

  bool operator==(const LedgerState&) const = default;

 private:
  std::map<ledger::NodeId, Account> accounts_;
};

/// Copy-on-write overlay over a parent snapshot.  Where the old validation
/// path copied the whole account map before replaying a body, a ScratchState
/// starts empty and materializes only the accounts the body actually touches;
/// take_delta() then hands those post-images to StateManager for caching.
///
/// The base snapshot must outlive the scratch (both live under the consensus
/// lock in practice).
class ScratchState {
 public:
  explicit ScratchState(const LedgerState& base) : base_(&base) {}

  /// Overlay view: the touched copy if present, the base account otherwise.
  const Account& account(ledger::NodeId id) const;

  /// Same transition rules and outcomes as LedgerState::apply.
  TxOutcome apply(const ledger::Transaction& tx);

  /// Number of transactions that applied cleanly so far.
  std::size_t applied() const { return applied_; }

  /// Touched-account post-images accumulated so far (consumes the overlay).
  StateDelta take_delta();

 private:
  Account& touch(ledger::NodeId id);

  const LedgerState* base_;
  std::map<ledger::NodeId, Account> overlay_;
  std::size_t applied_ = 0;
};

class StateManager {
 public:
  /// `genesis_allocation` funds accounts before any block executes.
  StateManager(std::map<ledger::NodeId, std::uint64_t> genesis_allocation);

  /// State after executing the main chain from genesis to `block` (inclusive)
  /// in `tree`.  Snapshots are cached per block hash; blocks with a recorded
  /// delta materialize by delta application instead of body replay.
  const LedgerState& state_at(const ledger::BlockTree& tree,
                              const ledger::BlockHash& block);

  /// Cache the touched-account delta of `block` (recorded by validation).
  /// Keyed by block hash, so deltas for blocks that never join the tree are
  /// merely unused.
  void record_delta(const ledger::BlockHash& block, StateDelta delta);
  bool has_delta(const ledger::BlockHash& block) const {
    return deltas_.contains(block);
  }

  std::size_t cached_snapshots() const { return cache_.size(); }
  std::size_t cached_deltas() const { return deltas_.size(); }

 private:
  // Backstop against unbounded growth on very long runs: past this point the
  // delta cache resets and materialization falls back to body replay.
  static constexpr std::size_t kMaxDeltas = 1 << 16;

  LedgerState genesis_state_;
  std::unordered_map<ledger::BlockHash, LedgerState, Hash32Hasher> cache_;
  std::unordered_map<ledger::BlockHash, StateDelta, Hash32Hasher> deltas_;
};

}  // namespace themis::state
