// Account-based ledger state ("ledger processing", §VII-A).
//
// Consortium members hold accounts; transfers move balances, and every
// transaction advances its sender's nonce.  Nonce reuse is the on-chain
// definition of a double-spend attempt — the evidence a NodeSetContract
// removal proposal carries (§IV-C).
//
// Balances are 128-bit (common/uint128) with overflow-checked arithmetic:
// a transfer that would wrap a recipient's balance fails with
// TxOutcome::overflow and changes nothing, so the ledger survives realistic
// economic ranges without silent corruption.
//
// StateManager materializes the state at any block by replaying the main
// chain.  Snapshots are cached per block with a bounded LRU (a full snapshot
// of a million-account state is ~10^8 bytes — caching every block would make
// memory O(chain length × accounts)); the common access pattern (validate
// children of the current head, query the head) stays one delta application.
//
// Validation-time delta caching: block validation replays the body once on a
// ScratchState overlay and records the touched-account post-images as a
// StateDelta.  When StateManager later needs that block's snapshot it applies
// the delta — a handful of account writes — instead of decoding and replaying
// every transaction a second time.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <optional>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/uint128.h"
#include "ledger/blocktree.h"
#include "state/transfer.h"

namespace themis::state {

struct Account {
  UInt128 balance;
  /// Highest transaction nonce seen from this account (0 = none yet).
  std::uint64_t next_nonce = 1;

  bool operator==(const Account&) const = default;
};

enum class TxOutcome {
  applied,          ///< state updated
  data_only,        ///< no transfer payload; nonce advanced
  bad_nonce,        ///< nonce reuse or gap (double-spend evidence!)
  insufficient_funds,
  unknown_recipient,
  overflow,         ///< recipient balance would exceed 2^128 - 1
};

std::string_view to_string(TxOutcome outcome);

/// Post-images of every account a block's body touched, in account order.
/// Applying a delta to the block's parent state yields the block's state.
struct StateDelta {
  std::vector<std::pair<ledger::NodeId, Account>> accounts;
  /// Transactions that applied cleanly (mirrors apply_block's return).
  std::size_t applied = 0;

  bool operator==(const StateDelta&) const = default;
};

class LedgerState {
 public:
  LedgerState() = default;

  /// Credit an account at genesis (consortium funding allocation).
  /// Throws PreconditionError if the credit would overflow the balance.
  void fund(ledger::NodeId account, const UInt128& amount);

  const Account& account(ledger::NodeId id) const;
  const UInt128& balance(ledger::NodeId id) const { return account(id).balance; }
  /// Saturates at UInt128::max() if genesis over-funded past 2^128 - 1.
  UInt128 total_supply() const;

  /// All accounts, keyed by id.  The authstate layer iterates this to page
  /// the state into Merkle leaves and to serialize snapshots.
  const std::map<ledger::NodeId, Account>& accounts() const { return accounts_; }

  /// Overwrite one account verbatim (snapshot restore path).
  void put(ledger::NodeId id, const Account& account) { accounts_[id] = account; }

  /// Append an account whose id exceeds every existing one — the hinted
  /// insertion makes an ascending bulk load (snapshot decode of a
  /// million-account state) amortized O(1) per account instead of O(log n).
  void put_back(ledger::NodeId id, const Account& account) {
    accounts_.emplace_hint(accounts_.end(), id, account);
  }

  /// Apply one transaction.  Strict nonce discipline: the transaction's nonce
  /// must equal the sender's next_nonce.  Failed transactions do not change
  /// any balance (and do not advance the nonce).
  TxOutcome apply(const ledger::Transaction& tx);

  /// Apply every transaction of a block, in order.  Returns the number that
  /// applied cleanly; failures are skipped (they stay visible to auditors via
  /// apply()'s outcome when re-checked individually).
  std::size_t apply_block(const ledger::Block& block);

  /// Overwrite the touched accounts with a recorded delta's post-images —
  /// equivalent to apply_block on the block the delta was recorded from, but
  /// without decoding or replaying any transaction.
  void apply_delta(const StateDelta& delta);

  bool operator==(const LedgerState&) const = default;

 private:
  std::map<ledger::NodeId, Account> accounts_;
};

/// Copy-on-write overlay over a parent snapshot.  Where the old validation
/// path copied the whole account map before replaying a body, a ScratchState
/// starts empty and materializes only the accounts the body actually touches;
/// take_delta() then hands those post-images to StateManager for caching.
///
/// The base snapshot must outlive the scratch (both live under the consensus
/// lock in practice).
class ScratchState {
 public:
  explicit ScratchState(const LedgerState& base) : base_(&base) {}

  /// Overlay view: the touched copy if present, the base account otherwise.
  const Account& account(ledger::NodeId id) const;

  /// Same transition rules and outcomes as LedgerState::apply.
  TxOutcome apply(const ledger::Transaction& tx);

  /// Number of transactions that applied cleanly so far.
  std::size_t applied() const { return applied_; }

  /// Touched-account post-images accumulated so far (consumes the overlay).
  StateDelta take_delta();

 private:
  Account& touch(ledger::NodeId id);

  const LedgerState* base_;
  std::map<ledger::NodeId, Account> overlay_;
  std::size_t applied_ = 0;
};

class StateManager {
 public:
  /// Past this many cached per-block snapshots, the least-recently-used is
  /// evicted and a later query for it falls back to replay from the base.
  static constexpr std::size_t kDefaultMaxCached = 8;

  /// `genesis_allocation` funds accounts before any block executes.
  explicit StateManager(std::map<ledger::NodeId, UInt128> genesis_allocation,
                        std::size_t max_cached = kDefaultMaxCached);

  /// State after executing the main chain from the tree's root to `block`
  /// (inclusive).  Snapshots are cached per block hash (bounded LRU); blocks
  /// with a recorded delta materialize by delta application instead of body
  /// replay.  The returned reference stays valid until the next state_at or
  /// reset_base call.
  const LedgerState& state_at(const ledger::BlockTree& tree,
                              const ledger::BlockHash& block);

  /// Cache the touched-account delta of `block` (recorded by validation).
  /// Keyed by block hash, so deltas for blocks that never join the tree are
  /// merely unused.
  void record_delta(const ledger::BlockHash& block, StateDelta delta);
  bool has_delta(const ledger::BlockHash& block) const {
    return deltas_.contains(block);
  }
  /// The recorded delta for `block`, or nullptr.  The authstate RootCache
  /// uses the touched-account list to re-hash only dirty Merkle pages.
  const StateDelta* delta(const ledger::BlockHash& block) const {
    const auto it = deltas_.find(block);
    return it == deltas_.end() ? nullptr : &it->second;
  }

  /// Replace the base state (snapshot-restore path: the tree is re-rooted at
  /// the snapshot block and `base` is the state *after* executing it).
  /// Clears all cached snapshots, deltas, and the pinned anchor.
  void reset_base(LedgerState base);

  /// Pin the state at `block` so LRU churn cannot evict it (single slot; a
  /// new pin replaces the old).  The snapshot path pins each written anchor,
  /// so the next snapshot replays only the blocks since the previous one
  /// instead of the whole chain.  Throws PreconditionError when `block` sits
  /// below the hard-finalized floor — an anchor below finality would let the
  /// snapshot cursor regress onto a prefix the overlay already committed.
  void pin_anchor(const ledger::BlockTree& tree, const ledger::BlockHash& block);

  /// Raise the hard-finality floor (monotone; from the checkpoint overlay).
  /// Anchor pins below this height are rejected from here on.
  void set_finalized_floor(std::uint64_t height) {
    if (height > finalized_floor_) finalized_floor_ = height;
  }
  std::uint64_t finalized_floor() const { return finalized_floor_; }

  /// The state the root of the tree materializes from (genesis allocation,
  /// or the restored snapshot after reset_base).
  const LedgerState& base() const { return base_state_; }

  std::size_t cached_snapshots() const { return cache_.size(); }
  std::size_t cached_deltas() const { return deltas_.size(); }
  std::size_t max_cached() const { return max_cached_; }

 private:
  // Backstop against unbounded growth on very long runs: past this point the
  // delta cache resets and materialization falls back to body replay.
  static constexpr std::size_t kMaxDeltas = 1 << 16;

  struct CacheEntry {
    LedgerState state;
    std::list<ledger::BlockHash>::iterator lru;
  };

  /// Insert (or refresh) `block` in the cache, evicting the LRU entry past
  /// the bound.  Returns the cached state.
  const LedgerState& cache_put(const ledger::BlockHash& block,
                               LedgerState state);
  void cache_touch(CacheEntry& entry);

  LedgerState base_state_;
  std::size_t max_cached_;
  std::unordered_map<ledger::BlockHash, CacheEntry, Hash32Hasher> cache_;
  std::list<ledger::BlockHash> lru_;  // front = most recently used
  std::unordered_map<ledger::BlockHash, StateDelta, Hash32Hasher> deltas_;
  /// Single eviction-proof slot for the snapshot anchor (see pin_anchor).
  std::optional<std::pair<ledger::BlockHash, LedgerState>> pinned_;
  /// Hard-finality floor for anchor pins (see set_finalized_floor).
  std::uint64_t finalized_floor_ = 0;
};

}  // namespace themis::state
