// Durable state snapshots.
//
// A snapshot captures the full account state at a specific block so a node
// restarts in O(accounts) instead of O(history): load the snapshot, re-root
// the BlockTree at the snapshot block, and replay only the records above it.
// Paired with BlockStore pruning (dropping records below the snapshot
// height), disk usage stops growing with chain length.
//
// Format (versioned, little-endian, single file):
//   magic "TSNP" | version u32 | height u64 | block hash | state root |
//   account count varint | (id u32, balance lo u64, balance hi u64,
//   next_nonce u64)* ascending | sha256d checksum of everything before it
//
// Writes are atomic: the payload lands in `<path>.tmp` which is then renamed
// over the target, so a crash mid-write leaves the previous snapshot intact.
// Reads verify the checksum AND recompute the Merkle state root from the
// decoded accounts — a snapshot that does not reproduce its own claimed root
// is treated as absent, and the node falls back to full replay.
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>

#include "common/bytes.h"
#include "ledger/types.h"
#include "state/ledger_state.h"

namespace themis::state::authstate {

inline constexpr std::uint32_t kSnapshotVersion = 1;

struct Snapshot {
  std::uint64_t height = 0;       ///< height of the snapshot block
  ledger::BlockHash block{};      ///< id of the snapshot block
  Hash32 state_root{};            ///< authstate root of `state`
  LedgerState state;              ///< full account state at `block`, inclusive
};

/// Serialize a snapshot (computes and embeds the state root).
Bytes encode_snapshot(const Snapshot& snapshot);

/// Write atomically (tmp + rename).  Returns false on any I/O failure,
/// leaving a previous snapshot at `path` untouched.
bool write_snapshot(const std::filesystem::path& path,
                    const Snapshot& snapshot);

/// Decode; nullopt on any corruption (bad magic/version/checksum, trailing
/// bytes, out-of-order accounts, or a state root mismatch).
std::optional<Snapshot> decode_snapshot(ByteSpan data);

/// Load and fully verify the snapshot at `path`; nullopt when missing or
/// corrupt (the caller then falls back to replay-from-genesis).
std::optional<Snapshot> read_snapshot(const std::filesystem::path& path);

}  // namespace themis::state::authstate
