// Authenticated account state: paged Merkle commitment + inclusion proofs.
//
// The ledger state is partitioned into fixed id-range *pages*: page p covers
// accounts [p*64, (p+1)*64).  Each page serializes its live accounts in id
// order (default-valued accounts are skipped, so the commitment is
// independent of incidental map materialization) and hashes into one Merkle
// leaf; the page hashes form a binary Merkle tree via crypto/merkle, whose
// root is the *state root* a node reports alongside each head.
//
// Fixed ranges make the commitment incrementally maintainable: a block that
// touches k accounts dirties at most k pages, so RootCache recomputes those
// leaves plus one root pass instead of rehashing a million accounts.
//
// An AccountProof carries the full encoded page plus the Merkle path of its
// leaf.  Verifiers decode the page (strictly: ordered, in-range, no default
// accounts, no trailing bytes), find — or prove absent — the account inside
// it, and check the path against the trusted root via the light client's
// commitment verifier.  Absence within the committed page range is provable;
// ids past the last committed page are trivially empty (page_count bounds
// the id space: any id >= page_count*64 has default state).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/uint128.h"
#include "crypto/merkle.h"
#include "state/ledger_state.h"

namespace themis::state::authstate {

/// Accounts per Merkle page (fixed id ranges; must be a power of two).
inline constexpr std::uint32_t kAccountsPerPage = 64;

/// Page index covering account `id`.
constexpr std::uint32_t page_of(ledger::NodeId id) {
  return id / kAccountsPerPage;
}

/// Serialize page `page` of `state`: live accounts with id in
/// [page*64, (page+1)*64), ascending, each as (id, balance lo, balance hi,
/// next_nonce).  Default-valued accounts are omitted.
Bytes encode_page(const LedgerState& state, std::uint32_t page);

/// Leaf hash of an encoded page: double-SHA256 over a domain tag, the page
/// index, and the page bytes.  Binding the index into the leaf preimage
/// forecloses cross-page replay (two empty pages hash differently, so an
/// absence proof cannot be relocated to a page that actually has accounts).
Hash32 page_leaf_hash(std::uint32_t page, ByteSpan page_bytes);

/// Number of pages the commitment covers: enough to include the highest
/// non-default account, 0 for an empty state.
std::uint32_t page_count_of(const LedgerState& state);

/// Hashes of all committed pages, in page order.
std::vector<Hash32> page_hashes_of(const LedgerState& state);

/// The state root: Merkle root over page_hashes_of(state).  The empty state
/// commits to the all-zero root.
Hash32 state_root_of(const LedgerState& state);

/// Inclusion (or in-range absence) proof for one account.
struct AccountProof {
  std::uint32_t page = 0;        ///< leaf index of the account's page
  std::uint32_t page_count = 0;  ///< committed page span (bounds the id space)
  Bytes page_bytes;              ///< full canonical page encoding
  crypto::MerkleProof steps;     ///< Merkle path from the page leaf to the root

  bool operator==(const AccountProof&) const = default;
};

/// Build the proof for `id`.  Returns nullopt when the id's page lies past
/// the committed range — the verifier then knows the account is empty iff
/// page_of(id) >= page_count reported by the same trusted root, so callers
/// should surface page_count alongside.
std::optional<AccountProof> prove_account(const LedgerState& state,
                                          ledger::NodeId id);

/// Verify `proof` against a trusted `root`, establishing that account `id`
/// has exactly the state `claimed` (a default Account claim proves absence
/// within the page).  Rejects malformed or non-canonical page encodings,
/// out-of-range leaf indices, and paths that do not reproduce the root.
bool verify_account_proof(const Hash32& root, ledger::NodeId id,
                          const Account& claimed, const AccountProof& proof);

/// Incrementally maintained page-hash vector + root for an advancing head.
/// Not thread safe; callers serialize access (the consensus lock in P2pNode).
class RootCache {
 public:
  /// Recompute everything from `state` (O(accounts)).
  void rebuild(const LedgerState& state);

  /// Recompute only the pages containing `touched` ids against the
  /// post-state (O(touched pages + page count), the per-block path).
  void update(const LedgerState& state,
              const std::vector<ledger::NodeId>& touched);

  const Hash32& root() const { return root_; }
  std::uint32_t page_count() const {
    return static_cast<std::uint32_t>(pages_.size());
  }
  const std::vector<Hash32>& page_hashes() const { return pages_; }

 private:
  std::vector<Hash32> pages_;
  Hash32 root_{};
};

}  // namespace themis::state::authstate
