#include "state/authstate/merkle_state.h"

#include <algorithm>
#include <set>

#include "common/serialize.h"
#include "crypto/sha256.h"
#include "ledger/light_client.h"

namespace themis::state::authstate {

namespace {

// Domain tag for page leaves, so a page hash can never be confused with a
// transaction id or an internal Merkle node.
constexpr std::uint32_t kPageTag = 0x45475054;  // "TPGE"

bool is_default(const Account& a) { return a == Account{}; }

/// Merkle path length crypto/merkle produces for `leaves` leaves.
std::size_t proof_depth(std::uint32_t leaves) {
  std::size_t depth = 0;
  for (std::uint32_t n = leaves; n > 1; n = (n + 1) / 2) ++depth;
  return depth;
}

}  // namespace

Bytes encode_page(const LedgerState& state, std::uint32_t page) {
  const auto& accounts = state.accounts();
  const ledger::NodeId first = page * kAccountsPerPage;
  Writer entries;
  std::uint32_t count = 0;
  for (auto it = accounts.lower_bound(first);
       it != accounts.end() && page_of(it->first) == page; ++it) {
    if (is_default(it->second)) continue;
    entries.u32(it->first);
    entries.u64(it->second.balance.lo());
    entries.u64(it->second.balance.hi());
    entries.u64(it->second.next_nonce);
    ++count;
  }
  Writer w(8 + entries.size());
  w.varint(count);
  w.raw(entries.buffer());
  return w.take();
}

Hash32 page_leaf_hash(std::uint32_t page, ByteSpan page_bytes) {
  Writer w(8 + page_bytes.size());
  w.u32(kPageTag);
  w.u32(page);
  w.raw(page_bytes);
  return crypto::sha256d(w.buffer());
}

std::uint32_t page_count_of(const LedgerState& state) {
  const auto& accounts = state.accounts();
  for (auto it = accounts.rbegin(); it != accounts.rend(); ++it) {
    if (!is_default(it->second)) return page_of(it->first) + 1;
  }
  return 0;
}

std::vector<Hash32> page_hashes_of(const LedgerState& state) {
  const std::uint32_t count = page_count_of(state);
  std::vector<Hash32> hashes;
  hashes.reserve(count);
  for (std::uint32_t p = 0; p < count; ++p) {
    hashes.push_back(page_leaf_hash(p, encode_page(state, p)));
  }
  return hashes;
}

Hash32 state_root_of(const LedgerState& state) {
  return crypto::merkle_root(page_hashes_of(state));
}

std::optional<AccountProof> prove_account(const LedgerState& state,
                                          ledger::NodeId id) {
  const std::vector<Hash32> hashes = page_hashes_of(state);
  const std::uint32_t page = page_of(id);
  if (page >= hashes.size()) return std::nullopt;
  AccountProof proof;
  proof.page = page;
  proof.page_count = static_cast<std::uint32_t>(hashes.size());
  proof.page_bytes = encode_page(state, page);
  proof.steps = crypto::merkle_prove(hashes, page);
  return proof;
}

bool verify_account_proof(const Hash32& root, ledger::NodeId id,
                          const Account& claimed, const AccountProof& proof) {
  if (proof.page != page_of(id)) return false;
  if (proof.page >= proof.page_count) return false;
  // The proof depth must match the committed page span exactly; a mismatched
  // depth would let a leaf be reinterpreted as an internal node.
  if (proof.steps.size() != proof_depth(proof.page_count)) return false;

  // Strict canonical page decode: ascending in-range ids, no default
  // accounts, no trailing bytes.  Anything non-canonical is rejected so the
  // prover cannot smuggle an alternative encoding of the same page.
  std::optional<Account> found;
  try {
    Reader r(proof.page_bytes);
    const std::uint64_t count = r.varint();
    std::optional<ledger::NodeId> prev;
    for (std::uint64_t i = 0; i < count; ++i) {
      const ledger::NodeId entry_id = r.u32();
      if (page_of(entry_id) != proof.page) return false;
      if (prev.has_value() && entry_id <= *prev) return false;
      prev = entry_id;
      Account account;
      const std::uint64_t lo = r.u64();
      const std::uint64_t hi = r.u64();
      account.balance = UInt128(hi, lo);
      account.next_nonce = r.u64();
      if (is_default(account)) return false;
      if (entry_id == id) found = account;
    }
    r.expect_done();
  } catch (const DecodeError&) {
    return false;
  }

  // The page either pins the account's exact state or proves its absence.
  if (found.value_or(Account{}) != claimed) return false;

  const Hash32 leaf = page_leaf_hash(proof.page, proof.page_bytes);
  return ledger::HeaderChain::verify_commitment(leaf, proof.steps, root);
}

void RootCache::rebuild(const LedgerState& state) {
  pages_ = page_hashes_of(state);
  root_ = crypto::merkle_root(pages_);
}

void RootCache::update(const LedgerState& state,
                       const std::vector<ledger::NodeId>& touched) {
  const std::uint32_t old_count = page_count();
  const std::uint32_t new_count = page_count_of(state);
  pages_.resize(new_count);

  std::set<std::uint32_t> dirty;
  for (const ledger::NodeId id : touched) {
    const std::uint32_t p = page_of(id);
    if (p < new_count) dirty.insert(p);
  }
  // Pages newly inside the committed span need hashes even when untouched
  // (an id jump can commit empty pages in between).
  for (std::uint32_t p = old_count; p < new_count; ++p) dirty.insert(p);

  for (const std::uint32_t p : dirty) {
    pages_[p] = page_leaf_hash(p, encode_page(state, p));
  }
  root_ = crypto::merkle_root(pages_);
}

}  // namespace themis::state::authstate
