#include "state/authstate/snapshot.h"

#include <fstream>
#include <system_error>

#include "common/serialize.h"
#include "crypto/sha256.h"
#include "state/authstate/merkle_state.h"

namespace themis::state::authstate {

namespace {
constexpr std::uint32_t kSnapshotMagic = 0x504e5354;  // "TSNP"
}  // namespace

Bytes encode_snapshot(const Snapshot& snapshot) {
  const auto& accounts = snapshot.state.accounts();
  Writer w(64 + accounts.size() * 28);
  w.u32(kSnapshotMagic);
  w.u32(kSnapshotVersion);
  w.u64(snapshot.height);
  w.hash(snapshot.block);
  w.hash(state_root_of(snapshot.state));
  std::uint64_t live = 0;
  for (const auto& [id, account] : accounts) {
    if (account == Account{}) continue;
    ++live;
  }
  w.varint(live);
  for (const auto& [id, account] : accounts) {
    if (account == Account{}) continue;
    w.u32(id);
    w.u64(account.balance.lo());
    w.u64(account.balance.hi());
    w.u64(account.next_nonce);
  }
  const Hash32 checksum = crypto::sha256d(w.buffer());
  w.hash(checksum);
  return w.take();
}

bool write_snapshot(const std::filesystem::path& path,
                    const Snapshot& snapshot) {
  const Bytes data = encode_snapshot(snapshot);
  const std::filesystem::path tmp = path.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.is_open()) return false;
    out.write(reinterpret_cast<const char*>(data.data()),
              static_cast<std::streamsize>(data.size()));
    out.flush();
    if (!out.good()) return false;
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  return !ec;
}

std::optional<Snapshot> decode_snapshot(ByteSpan data) {
  if (data.size() < 32) return std::nullopt;
  const ByteSpan payload(data.data(), data.size() - 32);
  const ByteSpan trailer(data.data() + payload.size(), 32);
  const Hash32 expected = crypto::sha256d(payload);
  if (!std::equal(trailer.begin(), trailer.end(), expected.begin())) {
    return std::nullopt;
  }
  try {
    Reader r(payload);
    if (r.u32() != kSnapshotMagic) return std::nullopt;
    if (r.u32() != kSnapshotVersion) return std::nullopt;
    Snapshot snap;
    snap.height = r.u64();
    snap.block = r.hash();
    snap.state_root = r.hash();
    const std::uint64_t count = r.varint();
    std::optional<ledger::NodeId> prev;
    for (std::uint64_t i = 0; i < count; ++i) {
      const ledger::NodeId id = r.u32();
      if (prev.has_value() && id <= *prev) return std::nullopt;
      prev = id;
      Account account;
      const std::uint64_t lo = r.u64();
      const std::uint64_t hi = r.u64();
      account.balance = UInt128(hi, lo);
      account.next_nonce = r.u64();
      if (account == Account{}) return std::nullopt;
      // Ids are enforced strictly ascending above, so the hinted append is
      // valid and keeps the million-account load linear.
      snap.state.put_back(id, account);
    }
    r.expect_done();
    // A checksum guards against disk rot; recomputing the Merkle root also
    // guards against a syntactically valid snapshot claiming a state it does
    // not contain.
    if (state_root_of(snap.state) != snap.state_root) return std::nullopt;
    return snap;
  } catch (const DecodeError&) {
    return std::nullopt;
  }
}

std::optional<Snapshot> read_snapshot(const std::filesystem::path& path) {
  std::error_code ec;
  if (!std::filesystem::is_regular_file(path, ec) || ec) return std::nullopt;
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return std::nullopt;
  const std::uint64_t size = std::filesystem::file_size(path, ec);
  if (ec) return std::nullopt;
  Bytes data(size);
  in.read(reinterpret_cast<char*>(data.data()),
          static_cast<std::streamsize>(size));
  if (!in.good() && size > 0) return std::nullopt;
  return decode_snapshot(data);
}

}  // namespace themis::state::authstate
