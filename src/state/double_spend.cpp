#include "state/double_spend.h"

#include <map>

#include "common/serialize.h"

namespace themis::state {

bool DoubleSpendProof::valid() const {
  return first.sender() == second.sender() && first.nonce() == second.nonce() &&
         first.id() != second.id();
}

std::string DoubleSpendProof::describe() const {
  return "double-spend by node " + std::to_string(first.sender()) +
         ": nonce " + std::to_string(first.nonce()) + " signed twice (" +
         to_hex(first.id()).substr(0, 16) + " vs " +
         to_hex(second.id()).substr(0, 16) + ")";
}

Bytes DoubleSpendProof::encode() const {
  Writer w(2 * ledger::kCanonicalTxSize);
  w.raw(first.encode());
  w.raw(second.encode());
  return w.take();
}

std::optional<DoubleSpendProof> DoubleSpendProof::decode(ByteSpan raw) {
  if (raw.size() != 2 * ledger::kCanonicalTxSize) return std::nullopt;
  try {
    Reader r(raw);
    DoubleSpendProof proof;
    proof.first = ledger::Transaction::decode(r.raw(ledger::kCanonicalTxSize));
    proof.second = ledger::Transaction::decode(r.raw(ledger::kCanonicalTxSize));
    if (!proof.valid()) return std::nullopt;
    return proof;
  } catch (const DecodeError&) {
    return std::nullopt;
  }
}

namespace {

using SenderNonce = std::pair<ledger::NodeId, std::uint64_t>;

std::optional<DoubleSpendProof> scan(
    std::map<SenderNonce, const ledger::Transaction*>& seen,
    const std::vector<ledger::Transaction>& txs) {
  for (const ledger::Transaction& tx : txs) {
    const SenderNonce key{tx.sender(), tx.nonce()};
    const auto it = seen.find(key);
    if (it != seen.end()) {
      if (it->second->id() != tx.id()) {
        return DoubleSpendProof{*it->second, tx};
      }
      continue;  // the exact same transaction, not an equivocation
    }
    seen.emplace(key, &tx);
  }
  return std::nullopt;
}

}  // namespace

std::optional<DoubleSpendProof> find_double_spend(
    const std::vector<ledger::Transaction>& a,
    const std::vector<ledger::Transaction>& b) {
  std::map<SenderNonce, const ledger::Transaction*> seen;
  if (auto proof = scan(seen, a)) return proof;
  return scan(seen, b);
}

std::optional<DoubleSpendProof> find_double_spend(
    const std::vector<ledger::Transaction>& txs) {
  std::map<SenderNonce, const ledger::Transaction*> seen;
  return scan(seen, txs);
}

}  // namespace themis::state
