#include "state/ledger_state.h"

#include <vector>

#include "common/check.h"

namespace themis::state {

std::string_view to_string(TxOutcome outcome) {
  switch (outcome) {
    case TxOutcome::applied: return "applied";
    case TxOutcome::data_only: return "data_only";
    case TxOutcome::bad_nonce: return "bad_nonce";
    case TxOutcome::insufficient_funds: return "insufficient_funds";
    case TxOutcome::unknown_recipient: return "unknown_recipient";
    case TxOutcome::overflow: return "overflow";
  }
  return "unknown";
}

void LedgerState::fund(ledger::NodeId account, const UInt128& amount) {
  Account& acct = accounts_[account];
  const bool overflow = acct.balance.add_overflow(amount, acct.balance);
  expects(!overflow, "genesis funding overflows account balance");
}

const Account& LedgerState::account(ledger::NodeId id) const {
  static const Account kEmpty{};
  const auto it = accounts_.find(id);
  return it == accounts_.end() ? kEmpty : it->second;
}

UInt128 LedgerState::total_supply() const {
  UInt128 total;
  for (const auto& [id, acct] : accounts_) {
    if (total.add_overflow(acct.balance, total)) return UInt128::max();
  }
  return total;
}

TxOutcome LedgerState::apply(const ledger::Transaction& tx) {
  Account& sender = accounts_[tx.sender()];
  if (tx.nonce() != sender.next_nonce) return TxOutcome::bad_nonce;

  const std::optional<Transfer> transfer = transfer_of(tx);
  if (!transfer.has_value()) {
    ++sender.next_nonce;
    return TxOutcome::data_only;
  }
  if (transfer->to == ledger::kNoNode) return TxOutcome::unknown_recipient;
  if (sender.balance < transfer->amount) return TxOutcome::insufficient_funds;
  // Self-transfers are a no-op on balances; everyone else's credit must not
  // wrap the 128-bit range.
  if (transfer->to != tx.sender()) {
    UInt128 credited;
    if (accounts_[transfer->to].balance.add_overflow(transfer->amount,
                                                     credited)) {
      return TxOutcome::overflow;
    }
    accounts_[transfer->to].balance = credited;
    sender.balance -= transfer->amount;
  }
  ++sender.next_nonce;
  return TxOutcome::applied;
}

std::size_t LedgerState::apply_block(const ledger::Block& block) {
  std::size_t applied = 0;
  for (const ledger::Transaction& tx : block.transactions()) {
    const TxOutcome outcome = apply(tx);
    if (outcome == TxOutcome::applied || outcome == TxOutcome::data_only) {
      ++applied;
    }
  }
  return applied;
}

void LedgerState::apply_delta(const StateDelta& delta) {
  for (const auto& [id, account] : delta.accounts) {
    accounts_[id] = account;
  }
}

const Account& ScratchState::account(ledger::NodeId id) const {
  const auto it = overlay_.find(id);
  return it != overlay_.end() ? it->second : base_->account(id);
}

Account& ScratchState::touch(ledger::NodeId id) {
  const auto it = overlay_.find(id);
  if (it != overlay_.end()) return it->second;
  return overlay_.emplace(id, base_->account(id)).first->second;
}

TxOutcome ScratchState::apply(const ledger::Transaction& tx) {
  // Mirrors LedgerState::apply exactly (differentially tested); reads come
  // through the overlay, writes land only in the overlay.
  Account& sender = touch(tx.sender());
  if (tx.nonce() != sender.next_nonce) return TxOutcome::bad_nonce;

  const std::optional<Transfer> transfer = transfer_of(tx);
  if (!transfer.has_value()) {
    ++sender.next_nonce;
    ++applied_;
    return TxOutcome::data_only;
  }
  if (transfer->to == ledger::kNoNode) return TxOutcome::unknown_recipient;
  if (sender.balance < transfer->amount) return TxOutcome::insufficient_funds;
  if (transfer->to != tx.sender()) {
    UInt128 credited;
    if (touch(transfer->to).balance.add_overflow(transfer->amount, credited)) {
      return TxOutcome::overflow;
    }
    touch(transfer->to).balance = credited;
    sender.balance -= transfer->amount;
  }
  ++sender.next_nonce;
  ++applied_;
  return TxOutcome::applied;
}

StateDelta ScratchState::take_delta() {
  StateDelta delta;
  delta.applied = applied_;
  delta.accounts.reserve(overlay_.size());
  for (auto& [id, account] : overlay_) {
    delta.accounts.emplace_back(id, account);
  }
  overlay_.clear();
  return delta;
}

StateManager::StateManager(std::map<ledger::NodeId, UInt128> allocation,
                           std::size_t max_cached)
    : max_cached_(max_cached) {
  expects(max_cached_ >= 1, "state cache must hold at least one snapshot");
  for (const auto& [account, amount] : allocation) {
    base_state_.fund(account, amount);
  }
}

void StateManager::cache_touch(CacheEntry& entry) {
  lru_.splice(lru_.begin(), lru_, entry.lru);
}

const LedgerState& StateManager::cache_put(const ledger::BlockHash& block,
                                           LedgerState state) {
  const auto it = cache_.find(block);
  if (it != cache_.end()) {
    it->second.state = std::move(state);
    cache_touch(it->second);
    return it->second.state;
  }
  lru_.push_front(block);
  auto& entry = cache_[block];
  entry.state = std::move(state);
  entry.lru = lru_.begin();
  while (cache_.size() > max_cached_) {
    cache_.erase(lru_.back());
    lru_.pop_back();
  }
  return cache_.at(block).state;
}

const LedgerState& StateManager::state_at(const ledger::BlockTree& tree,
                                          const ledger::BlockHash& block) {
  expects(tree.contains(block), "block not in tree");
  {
    const auto it = cache_.find(block);
    if (it != cache_.end()) {
      cache_touch(it->second);
      return it->second.state;
    }
  }
  if (pinned_.has_value() && pinned_->first == block) return pinned_->second;
  // Walk up to the nearest cached ancestor (or the tree root), then replay
  // down onto one working copy.  Only the requested block is cached: caching
  // every intermediate would copy the full account map per block, which at a
  // million accounts is unaffordable in both time and memory.
  std::vector<ledger::BlockHash> pending;
  ledger::BlockHash cursor = block;
  while (!cache_.contains(cursor) &&
         !(pinned_.has_value() && pinned_->first == cursor) &&
         cursor != tree.genesis_hash()) {
    pending.push_back(cursor);
    const auto parent = tree.parent(cursor);
    ensures(parent.has_value(), "non-root block must have a parent");
    cursor = *parent;
  }

  // base_state_ is the state *at* the root block inclusive (the genesis
  // allocation for a genesis-rooted tree — the genesis body is empty — or the
  // restored snapshot for a snapshot-rooted one), so the root body is never
  // replayed.
  const LedgerState* start = &base_state_;
  if (const auto it = cache_.find(cursor); it != cache_.end()) {
    start = &it->second.state;
  } else if (pinned_.has_value() && pinned_->first == cursor) {
    start = &pinned_->second;
  }
  LedgerState state = *start;
  for (auto it = pending.rbegin(); it != pending.rend(); ++it) {
    // Prefer the validation-time delta: a few account overwrites instead of
    // decoding and replaying the whole body again.
    const auto delta_it = deltas_.find(*it);
    if (delta_it != deltas_.end()) {
      state.apply_delta(delta_it->second);
    } else {
      state.apply_block(*tree.block(*it));
    }
  }
  return cache_put(block, std::move(state));
}

void StateManager::record_delta(const ledger::BlockHash& block,
                                StateDelta delta) {
  if (deltas_.size() >= kMaxDeltas) deltas_.clear();
  deltas_.insert_or_assign(block, std::move(delta));
}

void StateManager::reset_base(LedgerState base) {
  base_state_ = std::move(base);
  cache_.clear();
  lru_.clear();
  deltas_.clear();
  pinned_.reset();
}

void StateManager::pin_anchor(const ledger::BlockTree& tree,
                              const ledger::BlockHash& block) {
  expects(tree.height(block) >= finalized_floor_,
          "pin_anchor below the hard-finalized height");
  const LedgerState& state = state_at(tree, block);
  pinned_.emplace(block, state);
}

}  // namespace themis::state
