#include "state/ledger_state.h"

#include <vector>

#include "common/check.h"

namespace themis::state {

std::string_view to_string(TxOutcome outcome) {
  switch (outcome) {
    case TxOutcome::applied: return "applied";
    case TxOutcome::data_only: return "data_only";
    case TxOutcome::bad_nonce: return "bad_nonce";
    case TxOutcome::insufficient_funds: return "insufficient_funds";
    case TxOutcome::unknown_recipient: return "unknown_recipient";
  }
  return "unknown";
}

void LedgerState::fund(ledger::NodeId account, std::uint64_t amount) {
  accounts_[account].balance += amount;
}

const Account& LedgerState::account(ledger::NodeId id) const {
  static const Account kEmpty{};
  const auto it = accounts_.find(id);
  return it == accounts_.end() ? kEmpty : it->second;
}

std::uint64_t LedgerState::total_supply() const {
  std::uint64_t total = 0;
  for (const auto& [id, acct] : accounts_) total += acct.balance;
  return total;
}

TxOutcome LedgerState::apply(const ledger::Transaction& tx) {
  Account& sender = accounts_[tx.sender()];
  if (tx.nonce() != sender.next_nonce) return TxOutcome::bad_nonce;

  const std::optional<Transfer> transfer = transfer_of(tx);
  if (!transfer.has_value()) {
    ++sender.next_nonce;
    return TxOutcome::data_only;
  }
  if (transfer->to == ledger::kNoNode) return TxOutcome::unknown_recipient;
  if (sender.balance < transfer->amount) return TxOutcome::insufficient_funds;

  ++sender.next_nonce;
  sender.balance -= transfer->amount;
  accounts_[transfer->to].balance += transfer->amount;
  return TxOutcome::applied;
}

std::size_t LedgerState::apply_block(const ledger::Block& block) {
  std::size_t applied = 0;
  for (const ledger::Transaction& tx : block.transactions()) {
    const TxOutcome outcome = apply(tx);
    if (outcome == TxOutcome::applied || outcome == TxOutcome::data_only) {
      ++applied;
    }
  }
  return applied;
}

void LedgerState::apply_delta(const StateDelta& delta) {
  for (const auto& [id, account] : delta.accounts) {
    accounts_[id] = account;
  }
}

const Account& ScratchState::account(ledger::NodeId id) const {
  const auto it = overlay_.find(id);
  return it != overlay_.end() ? it->second : base_->account(id);
}

Account& ScratchState::touch(ledger::NodeId id) {
  const auto it = overlay_.find(id);
  if (it != overlay_.end()) return it->second;
  return overlay_.emplace(id, base_->account(id)).first->second;
}

TxOutcome ScratchState::apply(const ledger::Transaction& tx) {
  // Mirrors LedgerState::apply exactly (differentially tested); reads come
  // through the overlay, writes land only in the overlay.
  Account& sender = touch(tx.sender());
  if (tx.nonce() != sender.next_nonce) return TxOutcome::bad_nonce;

  const std::optional<Transfer> transfer = transfer_of(tx);
  if (!transfer.has_value()) {
    ++sender.next_nonce;
    ++applied_;
    return TxOutcome::data_only;
  }
  if (transfer->to == ledger::kNoNode) return TxOutcome::unknown_recipient;
  if (sender.balance < transfer->amount) return TxOutcome::insufficient_funds;

  ++sender.next_nonce;
  sender.balance -= transfer->amount;
  touch(transfer->to).balance += transfer->amount;
  ++applied_;
  return TxOutcome::applied;
}

StateDelta ScratchState::take_delta() {
  StateDelta delta;
  delta.applied = applied_;
  delta.accounts.reserve(overlay_.size());
  for (auto& [id, account] : overlay_) {
    delta.accounts.emplace_back(id, account);
  }
  overlay_.clear();
  return delta;
}

StateManager::StateManager(std::map<ledger::NodeId, std::uint64_t> allocation) {
  for (const auto& [account, amount] : allocation) {
    genesis_state_.fund(account, amount);
  }
}

const LedgerState& StateManager::state_at(const ledger::BlockTree& tree,
                                          const ledger::BlockHash& block) {
  expects(tree.contains(block), "block not in tree");
  // Walk up to the nearest cached ancestor (or genesis), then replay down.
  std::vector<ledger::BlockHash> pending;
  ledger::BlockHash cursor = block;
  while (!cache_.contains(cursor) && cursor != tree.genesis_hash()) {
    pending.push_back(cursor);
    const auto parent = tree.parent(cursor);
    ensures(parent.has_value(), "non-genesis block must have a parent");
    cursor = *parent;
  }

  LedgerState state = (cursor == tree.genesis_hash() && !cache_.contains(cursor))
                          ? genesis_state_
                          : cache_.at(cursor);
  for (auto it = pending.rbegin(); it != pending.rend(); ++it) {
    // Prefer the validation-time delta: a few account overwrites instead of
    // decoding and replaying the whole body again.
    const auto delta_it = deltas_.find(*it);
    if (delta_it != deltas_.end()) {
      state.apply_delta(delta_it->second);
    } else {
      state.apply_block(*tree.block(*it));
    }
    cache_.emplace(*it, state);
  }
  if (pending.empty() && !cache_.contains(block)) {
    // block == genesis.
    cache_.emplace(block, state);
  }
  return cache_.at(block);
}

void StateManager::record_delta(const ledger::BlockHash& block,
                                StateDelta delta) {
  if (deltas_.size() >= kMaxDeltas) deltas_.clear();
  deltas_.insert_or_assign(block, std::move(delta));
}

}  // namespace themis::state
