#include "state/pool_reconciler.h"

#include <vector>

namespace themis::state {

namespace {

/// Hashes from `descendant` down to `ancestor`, exclusive of `ancestor`,
/// newest first.
std::vector<ledger::BlockHash> path_down_to(const ledger::BlockTree& tree,
                                            const ledger::BlockHash& descendant,
                                            const ledger::BlockHash& ancestor) {
  std::vector<ledger::BlockHash> out;
  ledger::BlockHash cursor = descendant;
  while (cursor != ancestor) {
    out.push_back(cursor);
    const auto parent = tree.parent(cursor);
    if (!parent.has_value()) break;  // hit genesis
    cursor = *parent;
  }
  return out;
}

}  // namespace

PoolReconciler::Stats PoolReconciler::on_head_change(
    const ledger::BlockTree& tree, const ledger::BlockHash& old_head,
    const ledger::BlockHash& new_head, ledger::TxPool& pool,
    const LedgerState& new_state) {
  Stats stats;
  const ledger::BlockHash fork =
      tree.lowest_common_ancestor(old_head, new_head);

  // 1. Un-confirm the abandoned branch (old_head .. fork], collecting its
  //    transactions as candidates to return to the pool.  Blocks on the
  //    hard-finalized chain are immutable: their confirmations stand no
  //    matter what head pair the caller drove.
  std::vector<ledger::Transaction> abandoned;
  for (const ledger::BlockHash& hash : path_down_to(tree, old_head, fork)) {
    if (finalized_height_ > 0 && tree.height(hash) <= finalized_height_ &&
        tree.contains(finalized_block_) &&
        tree.is_ancestor(hash, finalized_block_)) {
      continue;
    }
    const ledger::BlockPtr block = tree.block(hash);
    for (const ledger::Transaction& tx : block->transactions()) {
      confirmed_in_.erase(tx.id());
      abandoned.push_back(tx);
    }
  }

  // 2. Confirm the new branch (fork .. new_head]: index every transaction
  //    and drop it from the pool.
  std::vector<ledger::TxId> confirmed_ids;
  for (const ledger::BlockHash& hash : path_down_to(tree, new_head, fork)) {
    const ledger::BlockPtr block = tree.block(hash);
    for (const ledger::Transaction& tx : block->transactions()) {
      confirmed_in_[tx.id()] = hash;
      confirmed_ids.push_back(tx.id());
      ++stats.confirmed;
      if (confirm_hook_) confirm_hook_(tx.id());
    }
  }
  if (!confirmed_ids.empty()) pool.remove(confirmed_ids);

  // 3. Return abandoned transactions that the new branch did not re-confirm
  //    and that can still apply (nonce not yet consumed at the new head).
  //    The admission signature is recomputed — deterministic keys and nonces
  //    make it bit-identical to the one verified at first admission.
  for (ledger::Transaction& tx : abandoned) {
    if (confirmed_in_.contains(tx.id())) continue;  // re-confirmed on new side
    if (tx.nonce() < new_state.account(tx.sender()).next_nonce) {
      ++stats.purged;  // a conflicting tx with this nonce already applied
      continue;
    }
    if (pool.add(ledger::sign_transaction(std::move(tx)))) ++stats.returned;
  }

  // 4. Purge pool-wide: any pending transaction whose nonce the new main
  //    chain has consumed can never become valid again.
  stats.purged += pool.purge([&new_state](const ledger::Transaction& tx) {
    return tx.nonce() < new_state.account(tx.sender()).next_nonce;
  });

  totals_.confirmed += stats.confirmed;
  totals_.returned += stats.returned;
  totals_.purged += stats.purged;
  return stats;
}

void PoolReconciler::rebuild(const ledger::BlockTree& tree,
                             const ledger::BlockHash& head) {
  confirmed_in_.clear();
  for (const ledger::BlockHash& hash : tree.chain_to(head)) {
    const ledger::BlockPtr block = tree.block(hash);
    for (const ledger::Transaction& tx : block->transactions()) {
      confirmed_in_[tx.id()] = hash;
    }
  }
}

std::optional<ledger::BlockHash> PoolReconciler::block_of(
    const ledger::TxId& id) const {
  const auto it = confirmed_in_.find(id);
  if (it == confirmed_in_.end()) return std::nullopt;
  return it->second;
}

}  // namespace themis::state
