// Console table / CSV emission used by every bench binary to print the
// paper's rows and series.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace themis::metrics {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  Table& add_row(std::vector<std::string> cells);

  /// Format a double compactly (fixed or scientific as appropriate).
  static std::string num(double v, int precision = 4);
  static std::string num(std::uint64_t v);

  /// Aligned, boxed console rendering.
  void print(std::ostream& os) const;
  /// Comma-separated rendering (for plotting scripts).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace themis::metrics
