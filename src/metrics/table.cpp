#include "metrics/table.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/check.h"

namespace themis::metrics {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  expects(!headers_.empty(), "table needs at least one column");
}

Table& Table::add_row(std::vector<std::string> cells) {
  expects(cells.size() == headers_.size(), "row width must match header");
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  const double a = std::abs(v);
  if (v != 0.0 && (a < 1e-3 || a >= 1e7)) {
    os << std::scientific << std::setprecision(precision) << v;
  } else {
    os << std::fixed << std::setprecision(precision) << v;
  }
  return os.str();
}

std::string Table::num(std::uint64_t v) { return std::to_string(v); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto rule = [&] {
    os << '+';
    for (const std::size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  const auto line = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << cells[c] << std::string(widths[c] - cells[c].size(), ' ')
         << " |";
    }
    os << '\n';
  };
  rule();
  line(headers_);
  rule();
  for (const auto& row : rows_) line(row);
  rule();
}

void Table::print_csv(std::ostream& os) const {
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace themis::metrics
