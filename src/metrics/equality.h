// The paper's two headline metrics (§VII-C).
//
//  * Variance of block-producing frequency σ_f² (Equality, Eq. 1): per
//    counting epoch of Δ main-chain blocks, f_i = q_i / Δ where q_i is the
//    number of epoch blocks produced by node i; σ_f² is the population
//    variance of {f_i} over all n nodes.
//  * Variance of block-producing probability σ_p² (Unpredictability, Eq. 2):
//    population variance of the per-round block-producing probabilities
//    {p_i}.  The probability vectors are supplied by the caller (they depend
//    on the algorithm: effective-power shares for PoX, a one-hot vector for
//    PBFT).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ledger/types.h"

namespace themis::metrics {

/// σ_f² for each full epoch of `delta` blocks in `producers` (the main-chain
/// producer sequence, genesis excluded).  Trailing partial epochs are
/// dropped.
std::vector<double> per_epoch_frequency_variance(
    std::span<const ledger::NodeId> producers, std::uint64_t delta,
    std::size_t n_nodes);

/// σ_f² over the whole producer sequence (one big epoch).
double frequency_variance_of(std::span<const ledger::NodeId> producers,
                             std::size_t n_nodes);

/// σ_p² of a probability vector (Eq. 2).
double probability_variance(std::span<const double> probabilities);

/// σ_p² for PoX algorithms from effective computing powers: p_i =
/// h_eff_i / sum(h_eff)  (Eq. 3).
double probability_variance_from_power(std::span<const double> effective_power);

/// σ_p² for PBFT: the leader of each round is known, so the probability
/// vector is one-hot and σ_p² = (n-1)/n² regardless of which node leads.
double pbft_probability_variance(std::size_t n_nodes);

/// Per-node block counts over a producer sequence.
std::vector<std::uint64_t> producer_counts(
    std::span<const ledger::NodeId> producers, std::size_t n_nodes);

}  // namespace themis::metrics
