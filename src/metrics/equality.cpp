#include "metrics/equality.h"

#include "common/check.h"
#include "common/stats.h"

namespace themis::metrics {

std::vector<std::uint64_t> producer_counts(
    std::span<const ledger::NodeId> producers, std::size_t n_nodes) {
  std::vector<std::uint64_t> counts(n_nodes, 0);
  for (const ledger::NodeId p : producers) {
    if (p < n_nodes) ++counts[p];
  }
  return counts;
}

std::vector<double> per_epoch_frequency_variance(
    std::span<const ledger::NodeId> producers, std::uint64_t delta,
    std::size_t n_nodes) {
  expects(delta >= 1, "epoch length must be positive");
  expects(n_nodes >= 1, "need at least one node");
  std::vector<double> out;
  for (std::size_t start = 0; start + delta <= producers.size(); start += delta) {
    const auto epoch = producers.subspan(start, delta);
    out.push_back(frequency_variance(producer_counts(epoch, n_nodes),
                                     static_cast<double>(delta)));
  }
  return out;
}

double frequency_variance_of(std::span<const ledger::NodeId> producers,
                             std::size_t n_nodes) {
  if (producers.empty()) return 0.0;
  return frequency_variance(producer_counts(producers, n_nodes),
                            static_cast<double>(producers.size()));
}

double probability_variance(std::span<const double> probabilities) {
  return variance(probabilities);
}

double probability_variance_from_power(std::span<const double> effective_power) {
  double total = 0.0;
  for (const double h : effective_power) total += h;
  expects(total > 0.0, "total effective power must be positive");
  std::vector<double> probs;
  probs.reserve(effective_power.size());
  for (const double h : effective_power) probs.push_back(h / total);
  return variance(probs);
}

double pbft_probability_variance(std::size_t n_nodes) {
  expects(n_nodes >= 1, "need at least one node");
  // One-hot vector: mean 1/n; variance = ((1-1/n)^2 + (n-1)(1/n)^2) / n.
  const double n = static_cast<double>(n_nodes);
  return (n - 1.0) / (n * n);
}

}  // namespace themis::metrics
