// Cross-trial aggregation for Monte-Carlo sweeps.
//
// The figure drivers report mean / stddev / 95% confidence intervals over
// many independent seeds per sweep point instead of single-seed point
// estimates (the reporting style of the parallel-chain and Bobtail
// low-variance-mining studies).  Summary carries sample statistics (stddev
// divides by n-1); the CI half-width uses Student-t critical values so small
// trial counts are not over-confident.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace themis::metrics {

struct Summary {
  std::size_t n = 0;
  double mean = 0.0;
  double stddev = 0.0;  ///< sample stddev (n-1); 0 when n <= 1
  double ci95 = 0.0;    ///< 95% CI half-width: t_{0.975,n-1} * stddev / sqrt(n)
  double min = 0.0;
  double max = 0.0;
};

/// Sample statistics of `xs`; all-zero Summary for an empty span.
Summary summarize(std::span<const double> xs);

/// Student-t two-sided 95% critical value (t_{0.975, n-1}) for a sample of
/// size n; exact table up to 30 degrees of freedom, 1.96 asymptote beyond.
double t_critical_975(std::size_t n);

/// "123.4 ± 5.6" when n > 1 (mean and CI half-width), else just "123.4" —
/// so single-trial runs print exactly what they always printed.
std::string format_mean_ci(const Summary& summary, int precision = 4);

/// Summarize a scalar projected out of each element:
///   summarize_over(trials, [](const auto& t) { return t.tps; })
template <typename T, typename Fn>
Summary summarize_over(const std::vector<T>& items, Fn&& fn) {
  std::vector<double> xs;
  xs.reserve(items.size());
  for (const auto& item : items) xs.push_back(fn(item));
  return summarize(xs);
}

/// Column-wise summaries across several per-epoch series (one per trial).
/// Row r aggregates series[t][r] over all trials t; rows are truncated to
/// the shortest series.
std::vector<Summary> summarize_series(
    const std::vector<std::vector<double>>& series);

}  // namespace themis::metrics
