#include "metrics/fork_stats.h"

#include <algorithm>

namespace themis::metrics {

ForkStats analyze_forks(const ledger::BlockTree& tree,
                        const ledger::BlockHash& head,
                        std::uint64_t from_height) {
  ForkStats stats;
  if (from_height < 1) from_height = 1;
  const std::uint64_t max_h = tree.height(head);
  if (from_height > max_h) return stats;

  // Count blocks per height by walking the whole tree once.
  std::vector<std::uint32_t> per_height(max_h + 1, 0);
  std::vector<ledger::BlockHash> stack{tree.genesis_hash()};
  while (!stack.empty()) {
    const ledger::BlockHash cur = stack.back();
    stack.pop_back();
    const std::uint64_t h = tree.height(cur);
    if (h < per_height.size()) ++per_height[h];
    for (const ledger::BlockHash& child : tree.children(cur)) {
      stack.push_back(child);
    }
  }

  for (std::uint64_t h = from_height; h <= max_h; ++h) {
    stats.total_blocks += per_height[h];
    ++stats.main_chain_blocks;  // exactly one main-chain block per height
  }
  stats.stale_blocks = stats.total_blocks - std::min<std::uint64_t>(
                                                stats.total_blocks,
                                                stats.main_chain_blocks);
  if (stats.total_blocks > 0) {
    stats.stale_rate = static_cast<double>(stats.stale_blocks) /
                       static_cast<double>(stats.total_blocks);
  }

  std::uint64_t run = 0;
  std::uint64_t run_total = 0;
  for (std::uint64_t h = from_height; h <= max_h; ++h) {
    if (per_height[h] >= 2) {
      ++stats.forked_heights;
      ++run;
    } else if (run > 0) {
      ++stats.fork_count;
      run_total += run;
      stats.longest_fork_duration = std::max(stats.longest_fork_duration, run);
      run = 0;
    }
  }
  if (run > 0) {
    ++stats.fork_count;
    run_total += run;
    stats.longest_fork_duration = std::max(stats.longest_fork_duration, run);
  }
  const std::uint64_t heights_considered = max_h - from_height + 1;
  if (heights_considered > 0) {
    stats.forked_height_fraction = static_cast<double>(stats.forked_heights) /
                                   static_cast<double>(heights_considered);
  }
  if (stats.fork_count > 0) {
    stats.mean_fork_duration =
        static_cast<double>(run_total) / static_cast<double>(stats.fork_count);
  }
  return stats;
}

}  // namespace themis::metrics
