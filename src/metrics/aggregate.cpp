#include "metrics/aggregate.h"

#include <algorithm>
#include <cmath>

#include "metrics/table.h"

namespace themis::metrics {

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.n = xs.size();
  if (xs.empty()) return s;
  s.min = s.max = xs.front();
  double sum = 0.0;
  for (const double x : xs) {
    sum += x;
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
  }
  s.mean = sum / static_cast<double>(s.n);
  if (s.n > 1) {
    double sq = 0.0;
    for (const double x : xs) sq += (x - s.mean) * (x - s.mean);
    s.stddev = std::sqrt(sq / static_cast<double>(s.n - 1));
    s.ci95 = t_critical_975(s.n) * s.stddev /
             std::sqrt(static_cast<double>(s.n));
  }
  return s;
}

double t_critical_975(std::size_t n) {
  // t_{0.975, df} for df = 1..30; beyond that the normal 1.96 is within 2%.
  static constexpr double kTable[] = {
      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
      2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
      2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};
  if (n < 2) return 0.0;
  const std::size_t df = n - 1;
  if (df <= 30) return kTable[df - 1];
  return 1.96;
}

std::string format_mean_ci(const Summary& summary, int precision) {
  if (summary.n <= 1) return Table::num(summary.mean, precision);
  return Table::num(summary.mean, precision) + " ± " +
         Table::num(summary.ci95, precision);
}

std::vector<Summary> summarize_series(
    const std::vector<std::vector<double>>& series) {
  if (series.empty()) return {};
  std::size_t rows = series.front().size();
  for (const auto& s : series) rows = std::min(rows, s.size());
  std::vector<Summary> out;
  out.reserve(rows);
  std::vector<double> column(series.size());
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t t = 0; t < series.size(); ++t) column[t] = series[t][r];
    out.push_back(summarize(column));
  }
  return out;
}

}  // namespace themis::metrics
