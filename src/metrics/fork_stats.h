// Fork accounting (§VII-C "Fork Duration", §VII-D Fig. 8).
//
// Post-hoc analysis of a node's block tree against its main chain:
//
//  * stale rate — the fraction of non-genesis blocks that did not make the
//    main chain ("fork rate" in the paper's Fig. 8 sense);
//  * forked-height fraction — the fraction of heights at which more than one
//    block exists;
//  * fork runs — maximal runs of consecutive heights with >1 block; the run
//    length is the paper's "fork duration: from the start to the end block
//    height during a fork".
#pragma once

#include <cstdint>
#include <vector>

#include "ledger/blocktree.h"

namespace themis::metrics {

struct ForkStats {
  std::uint64_t total_blocks = 0;      ///< non-genesis blocks in the tree
  std::uint64_t main_chain_blocks = 0; ///< non-genesis blocks on the main chain
  std::uint64_t stale_blocks = 0;
  double stale_rate = 0.0;

  std::uint64_t forked_heights = 0;    ///< heights with >= 2 blocks
  double forked_height_fraction = 0.0;

  std::uint64_t fork_count = 0;            ///< number of fork runs
  std::uint64_t longest_fork_duration = 0; ///< longest run, in blocks
  double mean_fork_duration = 0.0;
};

/// Analyze `tree` against the main chain ending at `head`.  Heights below
/// `from_height` are excluded — experiments use this to measure the converged
/// regime (after the difficulty multiples settle) rather than the warm-up.
ForkStats analyze_forks(const ledger::BlockTree& tree,
                        const ledger::BlockHash& head,
                        std::uint64_t from_height = 1);

}  // namespace themis::metrics
