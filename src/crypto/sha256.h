// SHA-256 (FIPS 180-4), implemented from scratch.
//
// This is the proof-of-work hash of the system: a block is valid when
// sha256d(header) interpreted as a big-endian 256-bit integer is below the
// node's puzzle target (§IV-B).  A streaming context is provided for large
// inputs; one-shot helpers cover the common cases.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/bytes.h"

namespace themis::crypto {

class Sha256 {
 public:
  Sha256();

  /// Absorb more input.  May be called any number of times.
  Sha256& update(ByteSpan data);

  /// Finalize and return the digest.  The context must not be reused after
  /// calling finish() without reset().
  Hash32 finish();

  /// Restore the initial state.
  void reset();

 private:
  void compress(const std::uint8_t block[64]);

  std::uint32_t state_[8];
  std::uint8_t buffer_[64];
  std::uint64_t total_len_ = 0;  // bytes absorbed so far
  std::size_t buffer_len_ = 0;
  bool finished_ = false;
};

/// One-shot SHA-256.
Hash32 sha256(ByteSpan data);

/// Double SHA-256 (Bitcoin-style), used for block ids and PoW.
Hash32 sha256d(ByteSpan data);

/// Tagged hash: SHA-256(SHA-256(tag) || SHA-256(tag) || data); domain
/// separation for signatures and challenges (BIP-340 style).
Hash32 tagged_hash(std::string_view tag, ByteSpan data);

}  // namespace themis::crypto
