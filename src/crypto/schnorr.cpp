#include "crypto/schnorr.h"

#include <algorithm>
#include <atomic>
#include <unordered_map>

#include "common/check.h"
#include "common/parallel.h"
#include "common/serialize.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"

namespace themis::crypto {

namespace {

constexpr std::string_view kChallengeTag = "Themis/challenge";

/// Challenge scalar e = H_tag(R.x || P.x || m) mod n.
Scalar challenge(const Hash32& rx, const PublicKey& px, const Hash32& msg) {
  Bytes buf;
  buf.reserve(96);
  buf.insert(buf.end(), rx.begin(), rx.end());
  buf.insert(buf.end(), px.begin(), px.end());
  buf.insert(buf.end(), msg.begin(), msg.end());
  return Scalar::from_bytes(tagged_hash(kChallengeTag, buf));
}

}  // namespace

Scalar schnorr_challenge(const Hash32& rx, const PublicKey& pub,
                         const Hash32& msg) {
  return challenge(rx, pub, msg);
}

Bytes Signature::to_bytes() const {
  Bytes out;
  out.reserve(kSignatureSize);
  out.insert(out.end(), r.begin(), r.end());
  out.insert(out.end(), s.begin(), s.end());
  return out;
}

std::optional<Signature> Signature::from_bytes(ByteSpan raw) {
  if (raw.size() != kSignatureSize) return std::nullopt;
  Signature sig;
  std::copy(raw.begin(), raw.begin() + 32, sig.r.begin());
  std::copy(raw.begin() + 32, raw.end(), sig.s.begin());
  return sig;
}

Keypair Keypair::from_seed(const Hash32& seed) {
  Scalar secret = Scalar::from_bytes(tagged_hash("Themis/keygen", seed));
  expects(!secret.is_zero(), "seed maps to the zero scalar");
  const Point::Affine affine = Point::mul_gen(secret).to_affine();
  // BIP-340 normalization: use the secret whose public point has even y.
  // Negating the secret mirrors the point over the x-axis, so the x-only
  // public key is unchanged and no second multiplication is needed.
  if (affine.y.is_odd()) secret = secret.negate();
  return Keypair(secret, affine.x.value().to_be_bytes());
}

Keypair Keypair::from_node_id(std::uint64_t node_id) {
  Writer w;
  w.str("Themis/node-seed");
  w.u64(node_id);
  return from_seed(sha256(w.buffer()));
}

Signature Keypair::sign(const Hash32& msg) const {
  // Deterministic nonce (RFC-6979 flavored): k = H(HMAC(d, m)) mod n.
  const Hash32 secret_bytes = secret_.to_bytes();
  Hash32 nonce_seed = hmac_sha256(secret_bytes, msg);
  Scalar k = Scalar::from_bytes(nonce_seed);
  // The zero scalar is astronomically unlikely; re-derive until non-zero so
  // the API has no failure mode.
  while (k.is_zero()) {
    nonce_seed = hmac_sha256(secret_bytes, nonce_seed);
    k = Scalar::from_bytes(nonce_seed);
  }

  const Point::Affine r_affine = Point::mul_gen(k).to_affine();
  // (-k)G mirrors R over the x-axis: same x, flipped parity.  Pick the sign
  // whose R has even y without recomputing the multiplication.
  if (r_affine.y.is_odd()) k = k.negate();

  const Hash32 rx = r_affine.x.value().to_be_bytes();
  const Scalar e = challenge(rx, public_key_, msg);
  const Scalar s = k + e * secret_;
  return Signature{rx, s.to_bytes()};
}

bool verify(const PublicKey& pub, const Hash32& msg, const Signature& sig) {
  const std::optional<Point> pub_point = Point::lift_x(UInt256::from_be_bytes(pub));
  if (!pub_point.has_value()) return false;

  const UInt256 s_raw = UInt256::from_be_bytes(sig.s);
  if (s_raw >= group_order()) return false;
  const Scalar s(s_raw);

  const UInt256 rx_raw = UInt256::from_be_bytes(sig.r);
  if (rx_raw >= field_prime()) return false;

  const Scalar e = challenge(sig.r, pub, msg);
  // R = s*G - e*P must have even y and x == sig.r.
  const Point r_point = Point::mul_gen(s) + pub_point->mul_wnaf(e.negate());
  if (r_point.is_infinity()) return false;
  const Point::Affine r_affine = r_point.to_affine();
  if (r_affine.y.is_odd()) return false;
  return r_affine.x.value() == rx_raw;
}

namespace {

/// Verify one sub-batch on the calling thread via the combined equation.
bool verify_batch_serial(const std::vector<BatchVerifyItem>& items) {
  if (items.empty()) return true;
  if (items.size() == 1) {
    return verify(items[0].pub, items[0].msg, items[0].sig);
  }

  const std::size_t n = items.size();
  std::vector<Scalar> s_values(n);
  std::vector<Scalar> e_values(n);
  std::vector<Point> r_points(n);
  std::vector<Point> p_points(n);
  // The same sender typically appears many times per batch; lifting an x-only
  // key costs a field square root, so dedupe lifts by key bytes.
  std::unordered_map<PublicKey, Point, Hash32Hasher> lifted;
  for (std::size_t i = 0; i < n; ++i) {
    const BatchVerifyItem& it = items[i];
    const UInt256 s_raw = UInt256::from_be_bytes(it.sig.s);
    if (s_raw >= group_order()) return false;
    const UInt256 rx_raw = UInt256::from_be_bytes(it.sig.r);
    if (rx_raw >= field_prime()) return false;

    const auto [pub_it, fresh] = lifted.try_emplace(it.pub);
    if (fresh) {
      const std::optional<Point> p = Point::lift_x(UInt256::from_be_bytes(it.pub));
      if (!p.has_value()) return false;
      pub_it->second = *p;
    }
    const std::optional<Point> r = Point::lift_x(rx_raw);
    if (!r.has_value()) return false;

    s_values[i] = Scalar(s_raw);
    e_values[i] = challenge(it.sig.r, it.pub, it.msg);
    r_points[i] = *r;
    p_points[i] = pub_it->second;
  }

  // Deterministic randomizers: z_0 = 1, z_i = H(batch contents || i) truncated
  // to 128 bits.  Deriving them from the batch itself means a forger would
  // have to pick signatures satisfying an equation whose coefficients depend
  // on those very signatures.
  Bytes transcript;
  transcript.reserve(n * 128);
  for (const BatchVerifyItem& it : items) {
    transcript.insert(transcript.end(), it.pub.begin(), it.pub.end());
    transcript.insert(transcript.end(), it.msg.begin(), it.msg.end());
    transcript.insert(transcript.end(), it.sig.r.begin(), it.sig.r.end());
    transcript.insert(transcript.end(), it.sig.s.begin(), it.sig.s.end());
  }
  const Hash32 seed = tagged_hash("Themis/batch-seed", transcript);

  std::vector<Scalar> z(n);
  z[0] = Scalar::from_u64(1);
  for (std::size_t i = 1; i < n; ++i) {
    Writer w;
    w.bytes(ByteSpan(seed.data(), seed.size()));
    w.u64(static_cast<std::uint64_t>(i));
    const Hash32 digest = tagged_hash("Themis/batch-z", w.buffer());
    UInt256 trimmed = UInt256::from_be_bytes(digest);
    trimmed.set_limb(2, 0);
    trimmed.set_limb(3, 0);  // 128-bit randomizers halve the wNAF scan length
    z[i] = trimmed.is_zero() ? Scalar::from_u64(1) : Scalar(trimmed);
  }

  // (sum z_i s_i) G  ==  sum z_i R_i + sum (z_i e_i) P_i.
  Scalar lhs;
  std::vector<Scalar> coeffs;
  std::vector<Point> points;
  coeffs.reserve(2 * n);
  points.reserve(2 * n);
  for (std::size_t i = 0; i < n; ++i) {
    lhs = lhs + z[i] * s_values[i];
    coeffs.push_back(z[i]);
    points.push_back(r_points[i]);
    coeffs.push_back(z[i] * e_values[i]);
    points.push_back(p_points[i]);
  }
  return Point::mul_gen(lhs).equals(multi_scalar_mul(coeffs, points));
}

}  // namespace

bool verify_batch(const std::vector<BatchVerifyItem>& items,
                  std::size_t n_threads) {
  if (items.size() < 2) return verify_batch_serial(items);
  if (n_threads == 0) n_threads = hardware_thread_count();
  const std::size_t n_chunks = std::min(n_threads, items.size());
  if (n_chunks <= 1) return verify_batch_serial(items);

  std::atomic<bool> all_ok{true};
  parallel_for_index(n_chunks, n_chunks, [&](std::size_t c) {
    const std::size_t lo = items.size() * c / n_chunks;
    const std::size_t hi = items.size() * (c + 1) / n_chunks;
    const std::vector<BatchVerifyItem> chunk(items.begin() + static_cast<std::ptrdiff_t>(lo),
                                             items.begin() + static_cast<std::ptrdiff_t>(hi));
    if (!verify_batch_serial(chunk)) all_ok.store(false, std::memory_order_relaxed);
  });
  return all_ok.load();
}

}  // namespace themis::crypto
