#include "crypto/schnorr.h"

#include "common/check.h"
#include "common/serialize.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"

namespace themis::crypto {

namespace {

constexpr std::string_view kChallengeTag = "Themis/challenge";

/// Challenge scalar e = H_tag(R.x || P.x || m) mod n.
Scalar challenge(const Hash32& rx, const PublicKey& px, const Hash32& msg) {
  Bytes buf;
  buf.reserve(96);
  buf.insert(buf.end(), rx.begin(), rx.end());
  buf.insert(buf.end(), px.begin(), px.end());
  buf.insert(buf.end(), msg.begin(), msg.end());
  return Scalar::from_bytes(tagged_hash(kChallengeTag, buf));
}

}  // namespace

Bytes Signature::to_bytes() const {
  Bytes out;
  out.reserve(kSignatureSize);
  out.insert(out.end(), r.begin(), r.end());
  out.insert(out.end(), s.begin(), s.end());
  return out;
}

std::optional<Signature> Signature::from_bytes(ByteSpan raw) {
  if (raw.size() != kSignatureSize) return std::nullopt;
  Signature sig;
  std::copy(raw.begin(), raw.begin() + 32, sig.r.begin());
  std::copy(raw.begin() + 32, raw.end(), sig.s.begin());
  return sig;
}

Keypair Keypair::from_seed(const Hash32& seed) {
  Scalar secret = Scalar::from_bytes(tagged_hash("Themis/keygen", seed));
  expects(!secret.is_zero(), "seed maps to the zero scalar");
  Point pub_point = Point::generator().mul(secret);
  Point::Affine affine = pub_point.to_affine();
  // BIP-340 normalization: use the secret whose public point has even y.
  if (affine.y.is_odd()) {
    secret = secret.negate();
    pub_point = Point::generator().mul(secret);
    affine = pub_point.to_affine();
  }
  return Keypair(secret, affine.x.value().to_be_bytes());
}

Keypair Keypair::from_node_id(std::uint64_t node_id) {
  Writer w;
  w.str("Themis/node-seed");
  w.u64(node_id);
  return from_seed(sha256(w.buffer()));
}

Signature Keypair::sign(const Hash32& msg) const {
  // Deterministic nonce (RFC-6979 flavored): k = H(HMAC(d, m)) mod n.
  const Hash32 secret_bytes = secret_.to_bytes();
  Hash32 nonce_seed = hmac_sha256(secret_bytes, msg);
  Scalar k = Scalar::from_bytes(nonce_seed);
  // The zero scalar is astronomically unlikely; re-derive until non-zero so
  // the API has no failure mode.
  while (k.is_zero()) {
    nonce_seed = hmac_sha256(secret_bytes, nonce_seed);
    k = Scalar::from_bytes(nonce_seed);
  }

  Point r_point = Point::generator().mul(k);
  Point::Affine r_affine = r_point.to_affine();
  if (r_affine.y.is_odd()) {
    k = k.negate();
    r_point = Point::generator().mul(k);
    r_affine = r_point.to_affine();
  }

  const Hash32 rx = r_affine.x.value().to_be_bytes();
  const Scalar e = challenge(rx, public_key_, msg);
  const Scalar s = k + e * secret_;
  return Signature{rx, s.to_bytes()};
}

bool verify(const PublicKey& pub, const Hash32& msg, const Signature& sig) {
  const std::optional<Point> pub_point = Point::lift_x(UInt256::from_be_bytes(pub));
  if (!pub_point.has_value()) return false;

  const UInt256 s_raw = UInt256::from_be_bytes(sig.s);
  if (s_raw >= group_order()) return false;
  const Scalar s(s_raw);

  const UInt256 rx_raw = UInt256::from_be_bytes(sig.r);
  if (rx_raw >= field_prime()) return false;

  const Scalar e = challenge(sig.r, pub, msg);
  // R = s*G - e*P must have even y and x == sig.r.
  const Point r_point =
      Point::generator().mul(s) + pub_point->mul(e).negate();
  if (r_point.is_infinity()) return false;
  const Point::Affine r_affine = r_point.to_affine();
  if (r_affine.y.is_odd()) return false;
  return r_affine.x.value() == rx_raw;
}

}  // namespace themis::crypto
