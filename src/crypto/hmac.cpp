#include "crypto/hmac.h"

#include <cstring>

#include "crypto/sha256.h"

namespace themis::crypto {

Hash32 hmac_sha256(ByteSpan key, ByteSpan data) {
  std::uint8_t block_key[64] = {0};
  if (key.size() > 64) {
    const Hash32 hashed = sha256(key);
    std::memcpy(block_key, hashed.data(), hashed.size());
  } else {
    std::memcpy(block_key, key.data(), key.size());
  }

  std::uint8_t ipad[64], opad[64];
  for (int i = 0; i < 64; ++i) {
    ipad[i] = block_key[i] ^ 0x36;
    opad[i] = block_key[i] ^ 0x5c;
  }

  Sha256 inner;
  inner.update(ByteSpan(ipad, 64));
  inner.update(data);
  const Hash32 inner_hash = inner.finish();

  Sha256 outer;
  outer.update(ByteSpan(opad, 64));
  outer.update(ByteSpan(inner_hash.data(), inner_hash.size()));
  return outer.finish();
}

Bytes hmac_expand(ByteSpan key, ByteSpan info, std::size_t n_blocks) {
  Bytes out;
  out.reserve(n_blocks * 32);
  Hash32 prev{};
  for (std::size_t i = 0; i < n_blocks; ++i) {
    Bytes material;
    if (i > 0) material.insert(material.end(), prev.begin(), prev.end());
    material.insert(material.end(), info.begin(), info.end());
    material.push_back(static_cast<std::uint8_t>(i + 1));
    prev = hmac_sha256(key, material);
    out.insert(out.end(), prev.begin(), prev.end());
  }
  return out;
}

}  // namespace themis::crypto
