// Binary Merkle tree over transaction ids.
//
// The block header commits to its transaction list through merkle_root();
// inclusion proofs let light verifiers check membership without the body.
// Odd levels duplicate the last node (Bitcoin-style).  The empty tree has a
// well-defined all-zero root.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.h"

namespace themis::crypto {

/// Merkle root of the given leaf hashes.
Hash32 merkle_root(const std::vector<Hash32>& leaves);

/// One step of an inclusion proof.
struct MerkleStep {
  Hash32 sibling;
  bool sibling_on_left = false;
};

using MerkleProof = std::vector<MerkleStep>;

/// Build the inclusion proof for leaf `index`.  Throws on out-of-range.
MerkleProof merkle_prove(const std::vector<Hash32>& leaves, std::size_t index);

/// Verify an inclusion proof against a root.
bool merkle_verify(const Hash32& leaf, const MerkleProof& proof, const Hash32& root);

}  // namespace themis::crypto
