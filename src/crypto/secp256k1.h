// secp256k1 arithmetic from scratch: prime field, scalar field, and group
// operations in Jacobian coordinates.
//
// This backs the block-header signatures required by Themis (§III: "the node
// signs the block header with its private key and broadcasts the block
// together with its signature").  Only what the signature scheme needs is
// exposed; the Schnorr layer lives in schnorr.h.
//
// Curve: y^2 = x^3 + 7 over F_p,
//   p = 2^256 - 2^32 - 977
//   n = group order (prime)
#pragma once

#include <optional>
#include <vector>

#include "common/uint256.h"

namespace themis::crypto {

/// Field modulus p and group order n.
const UInt256& field_prime();
const UInt256& group_order();

/// Element of F_p.  Always kept reduced (< p).
class FieldElement {
 public:
  FieldElement() = default;
  /// Reduces the input mod p.
  explicit FieldElement(const UInt256& v);
  static FieldElement from_u64(std::uint64_t v) { return FieldElement(UInt256(v)); }

  const UInt256& value() const { return value_; }
  bool is_zero() const { return value_.is_zero(); }
  bool is_odd() const { return value_.bit(0); }

  FieldElement operator+(const FieldElement& rhs) const;
  FieldElement operator-(const FieldElement& rhs) const;
  FieldElement operator*(const FieldElement& rhs) const;
  FieldElement negate() const;
  FieldElement square() const { return *this * *this; }

  /// Modular exponentiation.
  FieldElement pow(const UInt256& exponent) const;
  /// Multiplicative inverse (Fermat); precondition: non-zero.
  FieldElement inverse() const;
  /// Square root when it exists (p = 3 mod 4); nullopt otherwise.
  std::optional<FieldElement> sqrt() const;

  bool operator==(const FieldElement&) const = default;

 private:
  UInt256 value_;
};

/// Element of Z_n (the scalar field).  Always kept reduced (< n).
class Scalar {
 public:
  Scalar() = default;
  /// Reduces the input mod n.
  explicit Scalar(const UInt256& v);
  static Scalar from_u64(std::uint64_t v) { return Scalar(UInt256(v)); }
  /// Reduce a 32-byte big-endian string mod n.
  static Scalar from_bytes(const Hash32& bytes);

  const UInt256& value() const { return value_; }
  bool is_zero() const { return value_.is_zero(); }
  Hash32 to_bytes() const { return value_.to_be_bytes(); }

  Scalar operator+(const Scalar& rhs) const;
  Scalar operator-(const Scalar& rhs) const;
  Scalar operator*(const Scalar& rhs) const;
  Scalar negate() const;
  Scalar inverse() const;

  bool operator==(const Scalar&) const = default;

 private:
  UInt256 value_;
};

/// Curve point in Jacobian coordinates; (any, any, 0) is the identity.
class Point {
 public:
  /// The identity (point at infinity).
  Point() = default;
  /// From affine coordinates; the caller asserts the point is on the curve.
  static Point from_affine(const FieldElement& x, const FieldElement& y);
  /// The standard generator G.
  static const Point& generator();
  /// Recover the even-y point with the given x coordinate, if on the curve.
  static std::optional<Point> lift_x(const UInt256& x);

  bool is_infinity() const { return z_.is_zero(); }

  Point doubled() const;
  Point operator+(const Point& rhs) const;
  Point negate() const;

  /// Scalar multiplication (double-and-add, MSB first).  Reference
  /// implementation: simple and obviously correct, but ~4x slower than the
  /// windowed paths below.  The fast paths are differentially tested against
  /// this one.
  Point mul(const Scalar& k) const;

  /// Variable-base scalar multiplication via width-5 signed windows (wNAF):
  /// same group element as mul(), ~3x fewer field operations.
  Point mul_wnaf(const Scalar& k) const;

  /// Fixed-base multiplication k*G using a precomputed comb table of the
  /// generator: no doublings at all, ~64 mixed additions.  The table is built
  /// once per process on first use.
  static Point mul_gen(const Scalar& k);

  struct Affine {
    FieldElement x;
    FieldElement y;
  };
  /// Mixed addition with an affine (implicit z == 1) point; ~30% cheaper than
  /// the general Jacobian add.  The affine operand must be on the curve.
  Point add_affine(const Affine& rhs) const;

  /// Convert to affine; precondition: not the identity.
  Affine to_affine() const;

  /// Convert many points to affine sharing a single field inversion
  /// (Montgomery's trick).  Precondition: no input is the identity.
  static std::vector<Affine> batch_normalize(const std::vector<Point>& pts);

  /// Check the affine curve equation (identity counts as valid).
  bool on_curve() const;

  /// Equality in the group (compares affine forms).
  bool equals(const Point& rhs) const;

 private:
  Point(const FieldElement& x, const FieldElement& y, const FieldElement& z)
      : x_(x), y_(y), z_(z) {}

  FieldElement x_;
  FieldElement y_;
  FieldElement z_;  // z == 0 <=> infinity
};

/// Sum of k_i * P_i over all pairs (Strauss interleaving: one shared doubling
/// chain, per-point width-5 wNAF tables).  The two vectors must have equal
/// length; identity points and zero scalars contribute nothing.
///
/// This is the core of batched Schnorr verification: the marginal cost per
/// extra term is ~50 mixed additions instead of a full 256-doubling ladder.
Point multi_scalar_mul(const std::vector<Scalar>& scalars,
                       const std::vector<Point>& points);

}  // namespace themis::crypto
