// HMAC-SHA-256 (RFC 2104), used for deterministic signature nonces.
#pragma once

#include "common/bytes.h"

namespace themis::crypto {

/// HMAC-SHA-256 of `data` under `key` (any key length).
Hash32 hmac_sha256(ByteSpan key, ByteSpan data);

/// Simple HKDF-like expansion: chained HMACs producing `n` 32-byte blocks.
/// Used to derive per-purpose keys from one node seed.
Bytes hmac_expand(ByteSpan key, ByteSpan info, std::size_t n_blocks);

}  // namespace themis::crypto
