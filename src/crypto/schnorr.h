// Schnorr signatures over secp256k1 (BIP-340 style, x-only public keys,
// deterministic nonces derived with HMAC-SHA-256).
//
// Every consensus node holds a Keypair; block headers are signed so receivers
// can verify the producer belongs to the consortium node set (§III).
#pragma once

#include <optional>
#include <vector>

#include "common/bytes.h"
#include "crypto/secp256k1.h"

namespace themis::crypto {

/// 32-byte x-only public key.
using PublicKey = Hash32;

/// 64-byte signature: R.x || s.
struct Signature {
  Hash32 r{};
  Hash32 s{};

  Bytes to_bytes() const;
  static std::optional<Signature> from_bytes(ByteSpan raw);
  bool operator==(const Signature&) const = default;
};

/// Serialized signature size in bytes (§VI-C budgets ~128 B per block for the
/// signature record; ours is 64 B of signature + 32 B of key).
inline constexpr std::size_t kSignatureSize = 64;

class Keypair {
 public:
  /// Derive a keypair deterministically from a 32-byte seed.
  /// Throws if the seed maps to the zero scalar (probability ~2^-256).
  static Keypair from_seed(const Hash32& seed);

  /// Convenience: derive from a 64-bit node id (for simulations).
  static Keypair from_node_id(std::uint64_t node_id);

  const PublicKey& public_key() const { return public_key_; }

  /// Sign a 32-byte message digest.
  Signature sign(const Hash32& msg) const;

 private:
  Keypair(const Scalar& secret, const PublicKey& pub)
      : secret_(secret), public_key_(pub) {}

  Scalar secret_;       // normalized so the public point has even y
  PublicKey public_key_;
};

/// Verify a signature over a 32-byte digest under an x-only public key.
bool verify(const PublicKey& pub, const Hash32& msg, const Signature& sig);

/// The challenge scalar e = H_tag(R.x || P || m) mod n used by sign/verify.
/// Exposed so linear-combination verifiers (batch verification, checkpoint
/// half-aggregation) can reconstruct each signature's challenge.
Scalar schnorr_challenge(const Hash32& rx, const PublicKey& pub,
                         const Hash32& msg);

/// One (key, message, signature) triple queued for batch verification.
struct BatchVerifyItem {
  PublicKey pub{};
  Hash32 msg{};
  Signature sig{};
};

/// Verify a whole batch at once: true iff EVERY signature is valid.
///
/// Uses the standard random-linear-combination check — with deterministic
/// per-batch randomizers z_i (z_0 = 1) derived by hashing the batch contents,
///   (sum z_i * s_i) * G  ==  sum z_i * R_i  +  sum (z_i * e_i) * P_i
/// holds for honest signatures and fails with overwhelming probability if any
/// signature in the batch is forged.  The shared doubling chain makes the
/// marginal cost per signature several times cheaper than verify().
///
/// On a false return the caller learns only that at least one item is bad;
/// re-verify individually to find which (the expected-rare path).
///
/// `n_threads > 1` splits the batch into independent sub-batches verified in
/// parallel (src/common/parallel); the result is the logical AND.
bool verify_batch(const std::vector<BatchVerifyItem>& items,
                  std::size_t n_threads = 1);

}  // namespace themis::crypto
