#include "crypto/secp256k1.h"

#include "common/check.h"

namespace themis::crypto {

namespace {

// p = 2^256 - kC where kC = 2^32 + 977.
constexpr std::uint64_t kC = 0x1000003D1ull;

const UInt256 kP = UInt256::from_hex(
    "fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f");
const UInt256 kN = UInt256::from_hex(
    "fffffffffffffffffffffffffffffffe"
    "baaedce6af48a03bbfd25e8cd0364141");
const UInt256 kGx = UInt256::from_hex(
    "79be667ef9dcbbac55a06295ce870b07029bfcdb2dce28d959f2815b16f81798");
const UInt256 kGy = UInt256::from_hex(
    "483ada7726a3c4655da4fbfc0e1108a8fd17b448a68554199c47d08ffb10d4b8");

/// Reduce x (< 2^256) into [0, m) when x < 2m — a single conditional subtract.
UInt256 cond_sub(const UInt256& x, const UInt256& m) {
  if (x >= m) return x - m;
  return x;
}

/// Generic (hi*2^256 + lo) mod m via binary long division.  Used for the
/// scalar field where no special-form reduction applies; not performance
/// critical (a handful of calls per signature).
UInt256 reduce_wide_generic(const UInt256& hi, const UInt256& lo, const UInt256& m) {
  UInt256 r;  // invariant: r < m (and m has its top bit set for both p and n)
  for (int i = 511; i >= 0; --i) {
    const bool incoming = (i >= 256) ? hi.bit(i - 256) : lo.bit(i);
    const bool top = r.bit(255);
    UInt256 shifted = (r << 1);
    if (incoming) shifted = shifted | UInt256::one();
    if (top) {
      // True value is shifted + 2^256 >= 2^256 > m: subtract m once, which is
      // shifted + (2^256 - m) in wrapped arithmetic.
      shifted = shifted + (UInt256::zero() - m);
    }
    r = cond_sub(shifted, m);
  }
  return r;
}

/// Fast reduction mod p using p = 2^256 - kC:
/// hi*2^256 + lo == lo + hi*kC (mod p).
UInt256 reduce_wide_p(const UInt256& hi, const UInt256& lo) {
  // First fold: hi * kC (kC fits in 64 bits, so the product has one carry limb).
  std::uint64_t carry1 = 0;
  const UInt256 folded = hi.mul_small(kC, carry1);

  UInt256 acc;
  bool overflow = lo.add_overflow(folded, acc);
  // Each wrap past 2^256 contributes another +kC (mod p).
  std::uint64_t extra = (overflow ? 1u : 0u);

  // Second fold: (carry1 + extra) * kC, both small.
  while (carry1 > 0 || extra > 0) {
    std::uint64_t c2 = 0;
    const UInt256 fold2 = UInt256(carry1).mul_small(kC, c2) + UInt256(extra).mul_small(kC, c2);
    // carry1 < 2^64 and kC < 2^34, so fold2 fits comfortably; c2 is always 0.
    overflow = acc.add_overflow(fold2, acc);
    carry1 = 0;
    extra = overflow ? 1u : 0u;
  }
  acc = cond_sub(acc, kP);
  return cond_sub(acc, kP);
}

}  // namespace

const UInt256& field_prime() { return kP; }
const UInt256& group_order() { return kN; }

// ---------------------------------------------------------------------------
// FieldElement
// ---------------------------------------------------------------------------

FieldElement::FieldElement(const UInt256& v) {
  value_ = (v >= kP) ? reduce_wide_generic(UInt256::zero(), v, kP) : v;
}

FieldElement FieldElement::operator+(const FieldElement& rhs) const {
  UInt256 sum;
  const bool overflow = value_.add_overflow(rhs.value_, sum);
  if (overflow) sum = sum + UInt256(kC);  // +2^256 == +kC (mod p)
  FieldElement out;
  out.value_ = cond_sub(sum, kP);
  return out;
}

FieldElement FieldElement::operator-(const FieldElement& rhs) const {
  FieldElement out;
  if (value_ >= rhs.value_) {
    out.value_ = value_ - rhs.value_;
  } else {
    out.value_ = value_ + (kP - rhs.value_);
  }
  return out;
}

FieldElement FieldElement::operator*(const FieldElement& rhs) const {
  UInt256 hi, lo;
  UInt256::mul_wide(value_, rhs.value_, hi, lo);
  FieldElement out;
  out.value_ = reduce_wide_p(hi, lo);
  return out;
}

FieldElement FieldElement::negate() const {
  FieldElement out;
  out.value_ = value_.is_zero() ? UInt256::zero() : kP - value_;
  return out;
}

FieldElement FieldElement::pow(const UInt256& exponent) const {
  FieldElement result = FieldElement::from_u64(1);
  const int top = exponent.bit_length();
  for (int i = top; i >= 0; --i) {
    result = result.square();
    if (exponent.bit(i)) result = result * *this;
  }
  return result;
}

FieldElement FieldElement::inverse() const {
  expects(!is_zero(), "zero has no inverse");
  return pow(kP - UInt256(2));
}

std::optional<FieldElement> FieldElement::sqrt() const {
  // p == 3 (mod 4): candidate = x^((p+1)/4).
  const UInt256 exponent = (kP + UInt256(1)) >> 2;
  const FieldElement candidate = pow(exponent);
  if (candidate.square() == *this) return candidate;
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Scalar
// ---------------------------------------------------------------------------

Scalar::Scalar(const UInt256& v) {
  value_ = (v >= kN) ? reduce_wide_generic(UInt256::zero(), v, kN) : v;
}

Scalar Scalar::from_bytes(const Hash32& bytes) {
  return Scalar(UInt256::from_be_bytes(bytes));
}

Scalar Scalar::operator+(const Scalar& rhs) const {
  UInt256 sum;
  const bool overflow = value_.add_overflow(rhs.value_, sum);
  Scalar out;
  if (overflow) {
    // True value = sum + 2^256; subtract n once (2^256 - n < n so one is enough
    // after the conditional subtract below).
    sum = sum + (UInt256::zero() - kN);
  }
  out.value_ = cond_sub(sum, kN);
  return out;
}

Scalar Scalar::operator-(const Scalar& rhs) const {
  Scalar out;
  if (value_ >= rhs.value_) {
    out.value_ = value_ - rhs.value_;
  } else {
    out.value_ = value_ + (kN - rhs.value_);
  }
  return out;
}

Scalar Scalar::operator*(const Scalar& rhs) const {
  UInt256 hi, lo;
  UInt256::mul_wide(value_, rhs.value_, hi, lo);
  Scalar out;
  out.value_ = reduce_wide_generic(hi, lo, kN);
  return out;
}

Scalar Scalar::negate() const {
  Scalar out;
  out.value_ = value_.is_zero() ? UInt256::zero() : kN - value_;
  return out;
}

Scalar Scalar::inverse() const {
  expects(!is_zero(), "zero has no inverse");
  const UInt256 exponent = kN - UInt256(2);
  Scalar result = Scalar::from_u64(1);
  for (int i = exponent.bit_length(); i >= 0; --i) {
    result = result * result;
    if (exponent.bit(i)) result = result * *this;
  }
  return result;
}

// ---------------------------------------------------------------------------
// Point
// ---------------------------------------------------------------------------

Point Point::from_affine(const FieldElement& x, const FieldElement& y) {
  return Point(x, y, FieldElement::from_u64(1));
}

const Point& Point::generator() {
  static const Point g = Point::from_affine(FieldElement(kGx), FieldElement(kGy));
  return g;
}

std::optional<Point> Point::lift_x(const UInt256& x) {
  if (x >= kP) return std::nullopt;
  const FieldElement fx(x);
  const FieldElement rhs = fx.square() * fx + FieldElement::from_u64(7);
  const std::optional<FieldElement> y = rhs.sqrt();
  if (!y.has_value()) return std::nullopt;
  const FieldElement y_even = y->is_odd() ? y->negate() : *y;
  return Point::from_affine(fx, y_even);
}

Point Point::doubled() const {
  if (is_infinity() || y_.is_zero()) return Point();
  // dbl-2009-l for a = 0.
  const FieldElement a = x_.square();
  const FieldElement b = y_.square();
  const FieldElement c = b.square();
  FieldElement d = (x_ + b).square() - a - c;
  d = d + d;
  const FieldElement e = a + a + a;
  const FieldElement f = e.square();
  const FieldElement x3 = f - (d + d);
  FieldElement c8 = c + c;
  c8 = c8 + c8;
  c8 = c8 + c8;
  const FieldElement y3 = e * (d - x3) - c8;
  const FieldElement z3 = (y_ * z_) + (y_ * z_);
  return Point(x3, y3, z3);
}

Point Point::operator+(const Point& rhs) const {
  if (is_infinity()) return rhs;
  if (rhs.is_infinity()) return *this;
  // add-2007-bl (general Jacobian addition).
  const FieldElement z1z1 = z_.square();
  const FieldElement z2z2 = rhs.z_.square();
  const FieldElement u1 = x_ * z2z2;
  const FieldElement u2 = rhs.x_ * z1z1;
  const FieldElement s1 = y_ * z2z2 * rhs.z_;
  const FieldElement s2 = rhs.y_ * z1z1 * z_;
  const FieldElement h = u2 - u1;
  const FieldElement r = s2 - s1;
  if (h.is_zero()) {
    if (r.is_zero()) return doubled();
    return Point();  // inverses
  }
  const FieldElement h2 = h.square();
  const FieldElement h3 = h2 * h;
  const FieldElement v = u1 * h2;
  const FieldElement x3 = r.square() - h3 - (v + v);
  const FieldElement y3 = r * (v - x3) - s1 * h3;
  const FieldElement z3 = z_ * rhs.z_ * h;
  return Point(x3, y3, z3);
}

Point Point::negate() const {
  if (is_infinity()) return *this;
  return Point(x_, y_.negate(), z_);
}

Point Point::mul(const Scalar& k) const {
  Point acc;
  const int top = k.value().bit_length();
  for (int i = top; i >= 0; --i) {
    acc = acc.doubled();
    if (k.value().bit(i)) acc = acc + *this;
  }
  return acc;
}

Point::Affine Point::to_affine() const {
  expects(!is_infinity(), "identity has no affine form");
  const FieldElement zinv = z_.inverse();
  const FieldElement zinv2 = zinv.square();
  return Affine{x_ * zinv2, y_ * zinv2 * zinv};
}

bool Point::on_curve() const {
  if (is_infinity()) return true;
  const Affine a = to_affine();
  return a.y.square() == a.x.square() * a.x + FieldElement::from_u64(7);
}

bool Point::equals(const Point& rhs) const {
  if (is_infinity() || rhs.is_infinity()) {
    return is_infinity() == rhs.is_infinity();
  }
  const Affine a = to_affine();
  const Affine b = rhs.to_affine();
  return a.x == b.x && a.y == b.y;
}

}  // namespace themis::crypto
