#include "crypto/secp256k1.h"

#include <algorithm>
#include <array>

#include "common/check.h"

namespace themis::crypto {

namespace {

// p = 2^256 - kC where kC = 2^32 + 977.
constexpr std::uint64_t kC = 0x1000003D1ull;

const UInt256 kP = UInt256::from_hex(
    "fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f");
const UInt256 kN = UInt256::from_hex(
    "fffffffffffffffffffffffffffffffe"
    "baaedce6af48a03bbfd25e8cd0364141");
const UInt256 kGx = UInt256::from_hex(
    "79be667ef9dcbbac55a06295ce870b07029bfcdb2dce28d959f2815b16f81798");
const UInt256 kGy = UInt256::from_hex(
    "483ada7726a3c4655da4fbfc0e1108a8fd17b448a68554199c47d08ffb10d4b8");

/// Reduce x (< 2^256) into [0, m) when x < 2m — a single conditional subtract.
UInt256 cond_sub(const UInt256& x, const UInt256& m) {
  if (x >= m) return x - m;
  return x;
}

// 2^256 - n (129 bits), the folding constant for reduction mod n.
const UInt256 kCN = UInt256::zero() - kN;

/// (hi*2^256 + lo) mod n by folding: 2^256 == kCN (mod n), so each pass
/// replaces the high half with high*kCN.  kCN has 129 bits, so the high part
/// shrinks by ~127 bits per pass and the loop terminates in a few iterations.
UInt256 reduce_wide_n(const UInt256& hi, const UInt256& lo) {
  UInt256 acc = lo;
  UInt256 mult = hi;  // value == acc + mult * 2^256 == acc + mult * kCN (mod n)
  while (!mult.is_zero()) {
    UInt256 phi, plo;
    UInt256::mul_wide(mult, kCN, phi, plo);
    const bool wrapped = acc.add_overflow(plo, acc);
    mult = phi;
    if (wrapped) mult += UInt256(1);  // the wrap is another +2^256
  }
  // acc < 2^256 < 2n, so a single conditional subtract fully reduces.
  return cond_sub(acc, kN);
}

/// Fast reduction mod p using p = 2^256 - kC:
/// hi*2^256 + lo == lo + hi*kC (mod p).
UInt256 reduce_wide_p(const UInt256& hi, const UInt256& lo) {
  // First fold: hi * kC (kC fits in 64 bits, so the product has one carry limb).
  std::uint64_t carry1 = 0;
  const UInt256 folded = hi.mul_small(kC, carry1);

  UInt256 acc;
  bool overflow = lo.add_overflow(folded, acc);
  // Each wrap past 2^256 contributes another +kC (mod p).
  std::uint64_t extra = (overflow ? 1u : 0u);

  // Second fold: (carry1 + extra) * kC, both small.
  while (carry1 > 0 || extra > 0) {
    std::uint64_t c2 = 0;
    const UInt256 fold2 = UInt256(carry1).mul_small(kC, c2) + UInt256(extra).mul_small(kC, c2);
    // carry1 < 2^64 and kC < 2^34, so fold2 fits comfortably; c2 is always 0.
    overflow = acc.add_overflow(fold2, acc);
    carry1 = 0;
    extra = overflow ? 1u : 0u;
  }
  acc = cond_sub(acc, kP);
  return cond_sub(acc, kP);
}

}  // namespace

const UInt256& field_prime() { return kP; }
const UInt256& group_order() { return kN; }

// ---------------------------------------------------------------------------
// FieldElement
// ---------------------------------------------------------------------------

FieldElement::FieldElement(const UInt256& v) {
  // v < 2^256 < 2p: one conditional subtract reduces fully.
  value_ = cond_sub(v, kP);
}

FieldElement FieldElement::operator+(const FieldElement& rhs) const {
  UInt256 sum;
  const bool overflow = value_.add_overflow(rhs.value_, sum);
  if (overflow) sum = sum + UInt256(kC);  // +2^256 == +kC (mod p)
  FieldElement out;
  out.value_ = cond_sub(sum, kP);
  return out;
}

FieldElement FieldElement::operator-(const FieldElement& rhs) const {
  FieldElement out;
  if (value_ >= rhs.value_) {
    out.value_ = value_ - rhs.value_;
  } else {
    out.value_ = value_ + (kP - rhs.value_);
  }
  return out;
}

FieldElement FieldElement::operator*(const FieldElement& rhs) const {
  UInt256 hi, lo;
  UInt256::mul_wide(value_, rhs.value_, hi, lo);
  FieldElement out;
  out.value_ = reduce_wide_p(hi, lo);
  return out;
}

FieldElement FieldElement::negate() const {
  FieldElement out;
  out.value_ = value_.is_zero() ? UInt256::zero() : kP - value_;
  return out;
}

FieldElement FieldElement::pow(const UInt256& exponent) const {
  FieldElement result = FieldElement::from_u64(1);
  const int top = exponent.bit_length();
  for (int i = top; i >= 0; --i) {
    result = result.square();
    if (exponent.bit(i)) result = result * *this;
  }
  return result;
}

FieldElement FieldElement::inverse() const {
  expects(!is_zero(), "zero has no inverse");
  return pow(kP - UInt256(2));
}

std::optional<FieldElement> FieldElement::sqrt() const {
  // p == 3 (mod 4): candidate = x^((p+1)/4).
  const UInt256 exponent = (kP + UInt256(1)) >> 2;
  const FieldElement candidate = pow(exponent);
  if (candidate.square() == *this) return candidate;
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Scalar
// ---------------------------------------------------------------------------

Scalar::Scalar(const UInt256& v) {
  // v < 2^256 < 2n: one conditional subtract reduces fully.
  value_ = cond_sub(v, kN);
}

Scalar Scalar::from_bytes(const Hash32& bytes) {
  return Scalar(UInt256::from_be_bytes(bytes));
}

Scalar Scalar::operator+(const Scalar& rhs) const {
  UInt256 sum;
  const bool overflow = value_.add_overflow(rhs.value_, sum);
  Scalar out;
  if (overflow) {
    // True value = sum + 2^256; subtract n once (2^256 - n < n so one is enough
    // after the conditional subtract below).
    sum = sum + (UInt256::zero() - kN);
  }
  out.value_ = cond_sub(sum, kN);
  return out;
}

Scalar Scalar::operator-(const Scalar& rhs) const {
  Scalar out;
  if (value_ >= rhs.value_) {
    out.value_ = value_ - rhs.value_;
  } else {
    out.value_ = value_ + (kN - rhs.value_);
  }
  return out;
}

Scalar Scalar::operator*(const Scalar& rhs) const {
  UInt256 hi, lo;
  UInt256::mul_wide(value_, rhs.value_, hi, lo);
  Scalar out;
  out.value_ = reduce_wide_n(hi, lo);
  return out;
}

Scalar Scalar::negate() const {
  Scalar out;
  out.value_ = value_.is_zero() ? UInt256::zero() : kN - value_;
  return out;
}

Scalar Scalar::inverse() const {
  expects(!is_zero(), "zero has no inverse");
  const UInt256 exponent = kN - UInt256(2);
  Scalar result = Scalar::from_u64(1);
  for (int i = exponent.bit_length(); i >= 0; --i) {
    result = result * result;
    if (exponent.bit(i)) result = result * *this;
  }
  return result;
}

// ---------------------------------------------------------------------------
// Point
// ---------------------------------------------------------------------------

Point Point::from_affine(const FieldElement& x, const FieldElement& y) {
  return Point(x, y, FieldElement::from_u64(1));
}

const Point& Point::generator() {
  static const Point g = Point::from_affine(FieldElement(kGx), FieldElement(kGy));
  return g;
}

std::optional<Point> Point::lift_x(const UInt256& x) {
  if (x >= kP) return std::nullopt;
  const FieldElement fx(x);
  const FieldElement rhs = fx.square() * fx + FieldElement::from_u64(7);
  const std::optional<FieldElement> y = rhs.sqrt();
  if (!y.has_value()) return std::nullopt;
  const FieldElement y_even = y->is_odd() ? y->negate() : *y;
  return Point::from_affine(fx, y_even);
}

Point Point::doubled() const {
  if (is_infinity() || y_.is_zero()) return Point();
  // dbl-2009-l for a = 0.
  const FieldElement a = x_.square();
  const FieldElement b = y_.square();
  const FieldElement c = b.square();
  FieldElement d = (x_ + b).square() - a - c;
  d = d + d;
  const FieldElement e = a + a + a;
  const FieldElement f = e.square();
  const FieldElement x3 = f - (d + d);
  FieldElement c8 = c + c;
  c8 = c8 + c8;
  c8 = c8 + c8;
  const FieldElement y3 = e * (d - x3) - c8;
  const FieldElement z3 = (y_ * z_) + (y_ * z_);
  return Point(x3, y3, z3);
}

Point Point::operator+(const Point& rhs) const {
  if (is_infinity()) return rhs;
  if (rhs.is_infinity()) return *this;
  // add-2007-bl (general Jacobian addition).
  const FieldElement z1z1 = z_.square();
  const FieldElement z2z2 = rhs.z_.square();
  const FieldElement u1 = x_ * z2z2;
  const FieldElement u2 = rhs.x_ * z1z1;
  const FieldElement s1 = y_ * z2z2 * rhs.z_;
  const FieldElement s2 = rhs.y_ * z1z1 * z_;
  const FieldElement h = u2 - u1;
  const FieldElement r = s2 - s1;
  if (h.is_zero()) {
    if (r.is_zero()) return doubled();
    return Point();  // inverses
  }
  const FieldElement h2 = h.square();
  const FieldElement h3 = h2 * h;
  const FieldElement v = u1 * h2;
  const FieldElement x3 = r.square() - h3 - (v + v);
  const FieldElement y3 = r * (v - x3) - s1 * h3;
  const FieldElement z3 = z_ * rhs.z_ * h;
  return Point(x3, y3, z3);
}

Point Point::add_affine(const Affine& rhs) const {
  if (is_infinity()) return from_affine(rhs.x, rhs.y);
  // madd-2007-bl: general addition specialised for z2 == 1.
  const FieldElement z1z1 = z_.square();
  const FieldElement u2 = rhs.x * z1z1;
  const FieldElement s2 = rhs.y * z1z1 * z_;
  const FieldElement h = u2 - x_;
  const FieldElement r = s2 - y_;
  if (h.is_zero()) {
    if (r.is_zero()) return doubled();
    return Point();  // inverses
  }
  const FieldElement h2 = h.square();
  const FieldElement h3 = h2 * h;
  const FieldElement v = x_ * h2;
  const FieldElement x3 = r.square() - h3 - (v + v);
  const FieldElement y3 = r * (v - x3) - y_ * h3;
  const FieldElement z3 = z_ * h;
  return Point(x3, y3, z3);
}

Point Point::negate() const {
  if (is_infinity()) return *this;
  return Point(x_, y_.negate(), z_);
}

Point Point::mul(const Scalar& k) const {
  Point acc;
  const int top = k.value().bit_length();
  for (int i = top; i >= 0; --i) {
    acc = acc.doubled();
    if (k.value().bit(i)) acc = acc + *this;
  }
  return acc;
}

namespace {

/// Width-w signed-digit recoding (wNAF), LSB first: k == sum digit[i] * 2^i
/// where every digit is zero or odd with |digit| < 2^(w-1).  Consecutive
/// non-zero digits are at least w apart, so a 256-bit scalar averages
/// 256/(w+1) additions.
struct Wnaf {
  std::array<std::int8_t, 258> digit{};
  int top = -1;  // highest index with a non-zero digit
};

Wnaf compute_wnaf(const UInt256& k, const int width) {
  Wnaf out;
  UInt256 d = k;
  bool carry = false;  // remaining value is d + carry * 2^256
  const std::uint64_t mask = (1ull << width) - 1;
  const std::int64_t sign_bound = 1ll << (width - 1);
  int i = 0;
  while (!d.is_zero() || carry) {
    ensures(i < 258, "wNAF recoding overran its digit budget");
    std::int8_t digit = 0;
    if (d.bit(0)) {
      const std::int64_t val = static_cast<std::int64_t>(d.limb(0) & mask);
      if (val >= sign_bound) {
        digit = static_cast<std::int8_t>(val - (sign_bound << 1));
        // Clearing a negative digit adds |digit|, which may wrap past 2^256.
        UInt256 sum;
        if (d.add_overflow(UInt256(static_cast<std::uint64_t>(-digit)), sum)) {
          carry = true;
        }
        d = sum;
      } else {
        digit = static_cast<std::int8_t>(val);
        d = d - UInt256(static_cast<std::uint64_t>(val));
      }
    }
    out.digit[static_cast<std::size_t>(i)] = digit;
    if (digit != 0) out.top = i;
    d = d >> 1;
    if (carry) {
      d.set_limb(3, d.limb(3) | (1ull << 63));
      carry = false;
    }
    ++i;
  }
  return out;
}

constexpr int kWnafWidth = 5;
constexpr std::size_t kOddMultiples = 1u << (kWnafWidth - 2);  // P, 3P, ... 15P

/// Odd multiples {1P, 3P, ..., 15P} in Jacobian form; P must not be infinity.
std::vector<Point> odd_multiples(const Point& p) {
  std::vector<Point> table;
  table.reserve(kOddMultiples);
  const Point twice = p.doubled();
  table.push_back(p);
  for (std::size_t i = 1; i < kOddMultiples; ++i) {
    table.push_back(table.back() + twice);
  }
  return table;
}

// Fixed-base comb table: win[w][d-1] == (d << 4w) * G for d in 1..15, stored
// in affine form so every lookup feeds the cheap mixed addition.  ~60 KiB,
// built once per process (a few ms), shared by all threads thereafter.
constexpr int kCombWidth = 4;
constexpr int kCombWindows = 256 / kCombWidth;
constexpr std::size_t kCombEntries = (1u << kCombWidth) - 1;

struct GenTable {
  std::array<std::array<Point::Affine, kCombEntries>, kCombWindows> win;
};

const GenTable& gen_table() {
  static const GenTable table = [] {
    std::vector<Point> jac;
    jac.reserve(kCombWindows * kCombEntries);
    Point base = Point::generator();
    for (int w = 0; w < kCombWindows; ++w) {
      Point cur;
      for (std::size_t d = 0; d < kCombEntries; ++d) {
        cur = cur + base;
        jac.push_back(cur);
      }
      base = cur + base;  // 16 * previous base
    }
    const std::vector<Point::Affine> affine = Point::batch_normalize(jac);
    GenTable out;
    for (int w = 0; w < kCombWindows; ++w) {
      for (std::size_t d = 0; d < kCombEntries; ++d) {
        out.win[static_cast<std::size_t>(w)][d] =
            affine[static_cast<std::size_t>(w) * kCombEntries + d];
      }
    }
    return out;
  }();
  return table;
}

}  // namespace

Point Point::mul_wnaf(const Scalar& k) const {
  if (is_infinity() || k.is_zero()) return Point();
  const Wnaf naf = compute_wnaf(k.value(), kWnafWidth);
  const std::vector<Affine> table = batch_normalize(odd_multiples(*this));
  Point acc;
  for (int i = naf.top; i >= 0; --i) {
    acc = acc.doubled();
    const int d = naf.digit[static_cast<std::size_t>(i)];
    if (d > 0) {
      acc = acc.add_affine(table[static_cast<std::size_t>((d - 1) / 2)]);
    } else if (d < 0) {
      const Affine& t = table[static_cast<std::size_t>((-d - 1) / 2)];
      acc = acc.add_affine(Affine{t.x, t.y.negate()});
    }
  }
  return acc;
}

Point Point::mul_gen(const Scalar& k) {
  const GenTable& table = gen_table();
  Point acc;
  for (int w = 0; w < kCombWindows; ++w) {
    const std::uint64_t limb = k.value().limb(w / 16);
    const std::uint64_t nibble = (limb >> (4 * (w % 16))) & 0xF;
    if (nibble != 0) {
      acc = acc.add_affine(table.win[static_cast<std::size_t>(w)][nibble - 1]);
    }
  }
  return acc;
}

Point::Affine Point::to_affine() const {
  expects(!is_infinity(), "identity has no affine form");
  const FieldElement zinv = z_.inverse();
  const FieldElement zinv2 = zinv.square();
  return Affine{x_ * zinv2, y_ * zinv2 * zinv};
}

std::vector<Point::Affine> Point::batch_normalize(const std::vector<Point>& pts) {
  std::vector<Affine> out(pts.size());
  if (pts.empty()) return out;
  // Montgomery's trick: one inversion for the whole batch.
  std::vector<FieldElement> prefix(pts.size());
  FieldElement running = FieldElement::from_u64(1);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    expects(!pts[i].is_infinity(), "identity has no affine form");
    running = running * pts[i].z_;
    prefix[i] = running;
  }
  FieldElement inv = running.inverse();
  for (std::size_t i = pts.size(); i-- > 0;) {
    const FieldElement zinv = (i == 0) ? inv : inv * prefix[i - 1];
    inv = inv * pts[i].z_;
    const FieldElement zinv2 = zinv.square();
    out[i] = Affine{pts[i].x_ * zinv2, pts[i].y_ * zinv2 * zinv};
  }
  return out;
}

bool Point::on_curve() const {
  if (is_infinity()) return true;
  const Affine a = to_affine();
  return a.y.square() == a.x.square() * a.x + FieldElement::from_u64(7);
}

bool Point::equals(const Point& rhs) const {
  if (is_infinity() || rhs.is_infinity()) {
    return is_infinity() == rhs.is_infinity();
  }
  const Affine a = to_affine();
  const Affine b = rhs.to_affine();
  return a.x == b.x && a.y == b.y;
}

Point multi_scalar_mul(const std::vector<Scalar>& scalars,
                       const std::vector<Point>& points) {
  expects(scalars.size() == points.size(),
          "multi_scalar_mul needs one scalar per point");
  // Collect the active terms and their wNAF recodings; build every odd-multiple
  // table in Jacobian form so one batch_normalize covers them all.
  std::vector<Wnaf> nafs;
  std::vector<Point> jac_tables;
  nafs.reserve(scalars.size());
  jac_tables.reserve(scalars.size() * kOddMultiples);
  int top = -1;
  for (std::size_t i = 0; i < scalars.size(); ++i) {
    if (points[i].is_infinity() || scalars[i].is_zero()) continue;
    Wnaf naf = compute_wnaf(scalars[i].value(), kWnafWidth);
    top = std::max(top, naf.top);
    nafs.push_back(naf);
    const std::vector<Point> odd = odd_multiples(points[i]);
    jac_tables.insert(jac_tables.end(), odd.begin(), odd.end());
  }
  if (nafs.empty()) return Point();
  const std::vector<Point::Affine> tables = Point::batch_normalize(jac_tables);

  // Strauss interleaving: one shared doubling chain, each term contributing
  // its digit at every bit position.
  Point acc;
  for (int bit = top; bit >= 0; --bit) {
    acc = acc.doubled();
    for (std::size_t t = 0; t < nafs.size(); ++t) {
      if (bit > nafs[t].top) continue;
      const int d = nafs[t].digit[static_cast<std::size_t>(bit)];
      if (d == 0) continue;
      const std::size_t base = t * kOddMultiples;
      if (d > 0) {
        acc = acc.add_affine(tables[base + static_cast<std::size_t>((d - 1) / 2)]);
      } else {
        const Point::Affine& e =
            tables[base + static_cast<std::size_t>((-d - 1) / 2)];
        acc = acc.add_affine(Point::Affine{e.x, e.y.negate()});
      }
    }
  }
  return acc;
}

}  // namespace themis::crypto
