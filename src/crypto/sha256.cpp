#include "crypto/sha256.h"

#include <bit>
#include <cstring>

#include "common/check.h"

namespace themis::crypto {

namespace {

constexpr std::uint32_t kInit[8] = {
    0x6a09e667u, 0xbb67ae85u, 0x3c6ef372u, 0xa54ff53au,
    0x510e527fu, 0x9b05688cu, 0x1f83d9abu, 0x5be0cd19u,
};

constexpr std::uint32_t kRound[64] = {
    0x428a2f98u, 0x71374491u, 0xb5c0fbcfu, 0xe9b5dba5u, 0x3956c25bu, 0x59f111f1u,
    0x923f82a4u, 0xab1c5ed5u, 0xd807aa98u, 0x12835b01u, 0x243185beu, 0x550c7dc3u,
    0x72be5d74u, 0x80deb1feu, 0x9bdc06a7u, 0xc19bf174u, 0xe49b69c1u, 0xefbe4786u,
    0x0fc19dc6u, 0x240ca1ccu, 0x2de92c6fu, 0x4a7484aau, 0x5cb0a9dcu, 0x76f988dau,
    0x983e5152u, 0xa831c66du, 0xb00327c8u, 0xbf597fc7u, 0xc6e00bf3u, 0xd5a79147u,
    0x06ca6351u, 0x14292967u, 0x27b70a85u, 0x2e1b2138u, 0x4d2c6dfcu, 0x53380d13u,
    0x650a7354u, 0x766a0abbu, 0x81c2c92eu, 0x92722c85u, 0xa2bfe8a1u, 0xa81a664bu,
    0xc24b8b70u, 0xc76c51a3u, 0xd192e819u, 0xd6990624u, 0xf40e3585u, 0x106aa070u,
    0x19a4c116u, 0x1e376c08u, 0x2748774cu, 0x34b0bcb5u, 0x391c0cb3u, 0x4ed8aa4au,
    0x5b9cca4fu, 0x682e6ff3u, 0x748f82eeu, 0x78a5636fu, 0x84c87814u, 0x8cc70208u,
    0x90befffau, 0xa4506cebu, 0xbef9a3f7u, 0xc67178f2u,
};

std::uint32_t big_sigma0(std::uint32_t x) {
  return std::rotr(x, 2) ^ std::rotr(x, 13) ^ std::rotr(x, 22);
}
std::uint32_t big_sigma1(std::uint32_t x) {
  return std::rotr(x, 6) ^ std::rotr(x, 11) ^ std::rotr(x, 25);
}
std::uint32_t small_sigma0(std::uint32_t x) {
  return std::rotr(x, 7) ^ std::rotr(x, 18) ^ (x >> 3);
}
std::uint32_t small_sigma1(std::uint32_t x) {
  return std::rotr(x, 17) ^ std::rotr(x, 19) ^ (x >> 10);
}

}  // namespace

Sha256::Sha256() { reset(); }

void Sha256::reset() {
  std::memcpy(state_, kInit, sizeof(state_));
  total_len_ = 0;
  buffer_len_ = 0;
  finished_ = false;
}

void Sha256::compress(const std::uint8_t block[64]) {
  std::uint32_t w[64];
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<std::uint32_t>(block[4 * i]) << 24) |
           (static_cast<std::uint32_t>(block[4 * i + 1]) << 16) |
           (static_cast<std::uint32_t>(block[4 * i + 2]) << 8) |
           static_cast<std::uint32_t>(block[4 * i + 3]);
  }
  for (int i = 16; i < 64; ++i) {
    w[i] = small_sigma1(w[i - 2]) + w[i - 7] + small_sigma0(w[i - 15]) + w[i - 16];
  }

  std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3];
  std::uint32_t e = state_[4], f = state_[5], g = state_[6], h = state_[7];

  for (int i = 0; i < 64; ++i) {
    const std::uint32_t t1 =
        h + big_sigma1(e) + ((e & f) ^ (~e & g)) + kRound[i] + w[i];
    const std::uint32_t t2 = big_sigma0(a) + ((a & b) ^ (a & c) ^ (b & c));
    h = g;
    g = f;
    f = e;
    e = d + t1;
    d = c;
    c = b;
    b = a;
    a = t1 + t2;
  }

  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
  state_[5] += f;
  state_[6] += g;
  state_[7] += h;
}

Sha256& Sha256::update(ByteSpan data) {
  expects(!finished_, "Sha256 context already finalized");
  total_len_ += data.size();
  std::size_t offset = 0;
  if (buffer_len_ > 0) {
    const std::size_t take = std::min(data.size(), 64 - buffer_len_);
    std::memcpy(buffer_ + buffer_len_, data.data(), take);
    buffer_len_ += take;
    offset = take;
    if (buffer_len_ == 64) {
      compress(buffer_);
      buffer_len_ = 0;
    }
  }
  while (offset + 64 <= data.size()) {
    compress(data.data() + offset);
    offset += 64;
  }
  if (offset < data.size()) {
    std::memcpy(buffer_, data.data() + offset, data.size() - offset);
    buffer_len_ = data.size() - offset;
  }
  return *this;
}

Hash32 Sha256::finish() {
  expects(!finished_, "Sha256 context already finalized");

  const std::uint64_t bit_len = total_len_ * 8;
  // Padding: 0x80, zeros up to 56 mod 64, then the 8-byte big-endian length.
  std::uint8_t pad[72] = {0x80};
  std::size_t pad_len = (buffer_len_ < 56) ? (56 - buffer_len_) : (120 - buffer_len_);
  for (int i = 7; i >= 0; --i) {
    pad[pad_len++] = static_cast<std::uint8_t>(bit_len >> (8 * i));
  }
  update(ByteSpan(pad, pad_len));
  ensures(buffer_len_ == 0, "padding must land on a block boundary");
  finished_ = true;

  Hash32 out{};
  for (int i = 0; i < 8; ++i) {
    out[static_cast<std::size_t>(4 * i)] = static_cast<std::uint8_t>(state_[i] >> 24);
    out[static_cast<std::size_t>(4 * i + 1)] = static_cast<std::uint8_t>(state_[i] >> 16);
    out[static_cast<std::size_t>(4 * i + 2)] = static_cast<std::uint8_t>(state_[i] >> 8);
    out[static_cast<std::size_t>(4 * i + 3)] = static_cast<std::uint8_t>(state_[i]);
  }
  return out;
}

Hash32 sha256(ByteSpan data) {
  Sha256 ctx;
  ctx.update(data);
  return ctx.finish();
}

Hash32 sha256d(ByteSpan data) {
  const Hash32 first = sha256(data);
  return sha256(ByteSpan(first.data(), first.size()));
}

Hash32 tagged_hash(std::string_view tag, ByteSpan data) {
  const Hash32 tag_hash = sha256(
      ByteSpan(reinterpret_cast<const std::uint8_t*>(tag.data()), tag.size()));
  Sha256 ctx;
  ctx.update(ByteSpan(tag_hash.data(), tag_hash.size()));
  ctx.update(ByteSpan(tag_hash.data(), tag_hash.size()));
  ctx.update(data);
  return ctx.finish();
}

}  // namespace themis::crypto
