#include "crypto/merkle.h"

#include "common/check.h"
#include "crypto/sha256.h"

namespace themis::crypto {

namespace {

Hash32 hash_pair(const Hash32& left, const Hash32& right) {
  Sha256 ctx;
  ctx.update(ByteSpan(left.data(), left.size()));
  ctx.update(ByteSpan(right.data(), right.size()));
  const Hash32 once = ctx.finish();
  return sha256(ByteSpan(once.data(), once.size()));
}

}  // namespace

Hash32 merkle_root(const std::vector<Hash32>& leaves) {
  if (leaves.empty()) return Hash32{};
  std::vector<Hash32> level = leaves;
  while (level.size() > 1) {
    if (level.size() % 2 == 1) level.push_back(level.back());
    std::vector<Hash32> next;
    next.reserve(level.size() / 2);
    for (std::size_t i = 0; i < level.size(); i += 2) {
      next.push_back(hash_pair(level[i], level[i + 1]));
    }
    level = std::move(next);
  }
  return level[0];
}

MerkleProof merkle_prove(const std::vector<Hash32>& leaves, std::size_t index) {
  expects(index < leaves.size(), "merkle proof index out of range");
  MerkleProof proof;
  std::vector<Hash32> level = leaves;
  std::size_t pos = index;
  while (level.size() > 1) {
    if (level.size() % 2 == 1) level.push_back(level.back());
    const std::size_t sibling = pos ^ 1u;
    proof.push_back(MerkleStep{level[sibling], /*sibling_on_left=*/(sibling < pos)});
    std::vector<Hash32> next;
    next.reserve(level.size() / 2);
    for (std::size_t i = 0; i < level.size(); i += 2) {
      next.push_back(hash_pair(level[i], level[i + 1]));
    }
    level = std::move(next);
    pos /= 2;
  }
  return proof;
}

bool merkle_verify(const Hash32& leaf, const MerkleProof& proof, const Hash32& root) {
  Hash32 acc = leaf;
  for (const MerkleStep& step : proof) {
    acc = step.sibling_on_left ? hash_pair(step.sibling, acc) : hash_pair(acc, step.sibling);
  }
  return acc == root;
}

}  // namespace themis::crypto
