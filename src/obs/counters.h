// Run-wide counter / histogram / series registry.
//
// One Counters instance accumulates everything a run wants to report:
// named monotone counters (gossip deliveries, rejected blocks), value
// histograms (reorg depths, block intervals), per-epoch series (difficulty
// snapshots) and a per-link traffic matrix.  Registries use ordered maps so
// reports iterate deterministically.
//
// Hot paths that bump a counter per event should cache the reference (or the
// Histogram pointer) once instead of paying the string lookup every time —
// see PowNode for the pattern.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace themis::obs {

/// Exact-value histogram sized for simulation runs: keeps every sample and
/// sorts a separate copy on demand for percentiles.  (Runs record at most a
/// few hundred thousand samples; exactness beats bucketing error here.)
///
/// values() preserves insertion order: percentile()/min()/max() sort a
/// lazily-maintained copy, never the sample vector itself, so a caller
/// iterating or serializing values() cannot have the order shuffled out from
/// under it by an interleaved percentile query.
class Histogram {
 public:
  void record(double value) {
    values_.push_back(value);
    sorted_valid_ = false;
  }

  std::size_t count() const { return values_.size(); }
  double min() const;
  double max() const;
  double mean() const;
  /// Nearest-rank percentile, p in [0, 100].  0 for an empty histogram.
  double percentile(double p) const;

  /// Samples in insertion order (stable across percentile queries).
  const std::vector<double>& values() const { return values_; }

 private:
  std::vector<double> values_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
  const std::vector<double>& sorted() const {
    if (!sorted_valid_) {
      sorted_ = values_;
      std::sort(sorted_.begin(), sorted_.end());
      sorted_valid_ = true;
    }
    return sorted_;
  }
};

/// Per-directed-link traffic accumulator.
struct LinkStat {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
};

class Counters {
 public:
  /// Find-or-create; the returned reference stays valid for the registry's
  /// lifetime (std::map nodes are stable).
  std::uint64_t& counter(const std::string& name) { return counters_[name]; }
  Histogram& histogram(const std::string& name) { return histograms_[name]; }
  /// Ordered per-epoch (or per-anything) value series.
  std::vector<double>& series(const std::string& name) { return series_[name]; }
  LinkStat& link(std::uint32_t from, std::uint32_t to) {
    return links_[{from, to}];
  }

  const std::map<std::string, std::uint64_t>& counters() const {
    return counters_;
  }
  const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }
  const std::map<std::string, std::vector<double>>& series() const {
    return series_;
  }
  const std::map<std::pair<std::uint32_t, std::uint32_t>, LinkStat>& links()
      const {
    return links_;
  }

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, Histogram> histograms_;
  std::map<std::string, std::vector<double>> series_;
  std::map<std::pair<std::uint32_t, std::uint32_t>, LinkStat> links_;
};

}  // namespace themis::obs
