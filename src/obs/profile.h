// RAII wall-clock profiling scopes.
//
// A ProfileScope measures real (steady_clock) time between construction and
// destruction and accumulates it into a named ScopeStat.  Wall-clock numbers
// are *reporting only* — they never feed back into the simulation, so traced
// runs stay bit-identical to untraced ones; they land in the run report on
// stderr, never on diffable stdout.
//
// Zero overhead when disabled: constructing a ProfileScope from a null
// Profiler/ScopeStat skips the clock reads entirely (one branch, no timing
// syscalls).  Hot paths resolve the ScopeStat pointer once up front (a
// string-keyed map lookup) and construct scopes from the cached pointer.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>

namespace themis::obs {

struct ScopeStat {
  std::uint64_t calls = 0;
  std::uint64_t total_ns = 0;

  double total_ms() const { return static_cast<double>(total_ns) / 1e6; }
  double ns_per_call() const {
    return calls == 0 ? 0.0
                      : static_cast<double>(total_ns) / static_cast<double>(calls);
  }
};

class Profiler {
 public:
  /// Find-or-create; references are stable (std::map nodes).
  ScopeStat& scope(const std::string& name) { return scopes_[name]; }
  const std::map<std::string, ScopeStat>& scopes() const { return scopes_; }

 private:
  std::map<std::string, ScopeStat> scopes_;
};

class ProfileScope {
 public:
  /// Null `stat` disables the scope (no clock reads).
  explicit ProfileScope(ScopeStat* stat) : stat_(stat) {
    if (stat_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ProfileScope(Profiler* profiler, const std::string& name)
      : ProfileScope(profiler != nullptr ? &profiler->scope(name) : nullptr) {}

  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

  ~ProfileScope() {
    if (stat_ == nullptr) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    ++stat_->calls;
    stat_->total_ns += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
  }

 private:
  ScopeStat* stat_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace themis::obs
