#include "obs/live/log.h"

#include <cctype>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <iostream>
#include <mutex>

namespace themis::obs::live {

namespace {

/// Sink writes are serialized so concurrent records never interleave.
std::mutex g_sink_mu;

std::string iso8601_now() {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto millis = std::chrono::duration_cast<std::chrono::milliseconds>(
                          now.time_since_epoch())
                          .count() %
                      1000;
  std::tm tm{};
  gmtime_r(&secs, &tm);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec, static_cast<int>(millis));
  return buf;
}

void append_json_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_value_json(std::string& out, const LogField& field) {
  if (const auto* s = std::get_if<std::string>(&field.value)) {
    out += '"';
    append_json_escaped(out, *s);
    out += '"';
  } else if (const auto* u = std::get_if<std::uint64_t>(&field.value)) {
    out += std::to_string(*u);
  } else if (const auto* i = std::get_if<std::int64_t>(&field.value)) {
    out += std::to_string(*i);
  } else if (const auto* d = std::get_if<double>(&field.value)) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", *d);
    out += buf;
  } else if (const auto* b = std::get_if<bool>(&field.value)) {
    out += *b ? "true" : "false";
  }
}

void append_value_text(std::string& out, const LogField& field) {
  if (const auto* s = std::get_if<std::string>(&field.value)) {
    out += *s;
  } else {
    append_value_json(out, field);  // numbers/bools render identically
  }
}

}  // namespace

LogLevel log_level_from(std::string_view name) {
  if (name == "debug") return LogLevel::debug;
  if (name == "warn") return LogLevel::warn;
  if (name == "error") return LogLevel::error;
  if (name == "off") return LogLevel::off;
  return LogLevel::info;
}

std::string_view to_string(LogLevel level) {
  switch (level) {
    case LogLevel::debug: return "debug";
    case LogLevel::info: return "info";
    case LogLevel::warn: return "warn";
    case LogLevel::error: return "error";
    case LogLevel::off: return "off";
  }
  return "info";
}

Logger& Logger::global() {
  static Logger logger;
  return logger;
}

void Logger::set_sink(std::ostream* sink) {
  sink_.store(sink, std::memory_order_relaxed);
}

void Logger::log(LogLevel level, std::string_view component,
                 std::string_view msg,
                 std::initializer_list<LogField> fields) {
  if (!enabled(level)) return;
  std::string line;
  line.reserve(128);
  const std::string ts = iso8601_now();
  if (json_.load(std::memory_order_relaxed)) {
    line += "{\"ts\":\"";
    line += ts;
    line += "\",\"level\":\"";
    line += to_string(level);
    line += "\",\"component\":\"";
    append_json_escaped(line, component);
    line += "\",\"msg\":\"";
    append_json_escaped(line, msg);
    line += '"';
    for (const LogField& field : fields) {
      line += ",\"";
      append_json_escaped(line, field.key);
      line += "\":";
      append_value_json(line, field);
    }
    line += "}\n";
  } else {
    line += ts;
    line += ' ';
    std::string_view name = to_string(level);
    for (const char c : name) line += static_cast<char>(std::toupper(c));
    line.append(5 - name.size(), ' ');  // level column, "debug" is widest
    line += " [";
    line += component;
    line += "] ";
    line += msg;
    for (const LogField& field : fields) {
      line += ' ';
      line += field.key;
      line += '=';
      append_value_text(line, field);
    }
    line += '\n';
  }
  std::ostream* sink = sink_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(g_sink_mu);
  if (sink != nullptr) {
    (*sink) << line << std::flush;
  } else {
    std::fwrite(line.data(), 1, line.size(), stderr);
    std::fflush(stderr);
  }
}

}  // namespace themis::obs::live
