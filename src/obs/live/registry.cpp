#include "obs/live/registry.h"

#include <chrono>

namespace themis::obs::live {

std::uint64_t monotonic_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

ScopedTimer::ScopedTimer(Histogram* h) : h_(h) {
  if constexpr (kTelemetryEnabled) {
    if (h_ != nullptr) start_ns_ = monotonic_ns();
  }
}

ScopedTimer::~ScopedTimer() {
  if constexpr (kTelemetryEnabled) {
    if (h_ != nullptr) h_->record_ns(monotonic_ns() - start_ns_);
  }
}

double Histogram::Snapshot::quantile_ns(double q) const {
  if (total == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Nearest-rank target, then linear interpolation inside the winning bucket
  // between its lower and upper bound (overflow bucket: extrapolate 2x).
  const double target = q * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (counts[i] == 0) continue;
    const std::uint64_t before = cumulative;
    cumulative += counts[i];
    if (static_cast<double>(cumulative) < target) continue;
    const double lower =
        i == 0 ? 0.0 : static_cast<double>(Histogram::bound_ns(i - 1));
    const double upper = i + 1 == kBuckets
                             ? 2.0 * static_cast<double>(
                                         Histogram::bound_ns(i - 1))
                             : static_cast<double>(Histogram::bound_ns(i));
    const double within =
        counts[i] == 0
            ? 0.0
            : (target - static_cast<double>(before)) /
                  static_cast<double>(counts[i]);
    return lower + (upper - lower) * within;
  }
  return static_cast<double>(Histogram::bound_ns(kBuckets - 1));
}

Counter& Registry::counter(std::string_view name, std::string_view help) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = counter_by_name_.find(std::string(name));
  if (it != counter_by_name_.end()) return *it->second;
  Named<Counter>& slot = counters_.emplace_back();  // atomics are immovable
  slot.name = std::string(name);
  slot.help = std::string(help);
  Counter& c = slot.metric;
  counter_by_name_.emplace(std::string(name), &c);
  return c;
}

Gauge& Registry::gauge(std::string_view name, std::string_view help) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = gauge_by_name_.find(std::string(name));
  if (it != gauge_by_name_.end()) return *it->second;
  Named<Gauge>& slot = gauges_.emplace_back();
  slot.name = std::string(name);
  slot.help = std::string(help);
  Gauge& g = slot.metric;
  gauge_by_name_.emplace(std::string(name), &g);
  return g;
}

Histogram& Registry::histogram(std::string_view name, std::string_view help) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = histogram_by_name_.find(std::string(name));
  if (it != histogram_by_name_.end()) return *it->second;
  Named<Histogram>& slot = histograms_.emplace_back();
  slot.name = std::string(name);
  slot.help = std::string(help);
  Histogram& h = slot.metric;
  histogram_by_name_.emplace(std::string(name), &h);
  return h;
}

void Registry::gauge_fn(std::string_view name, std::string_view help,
                        std::function<double()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const FnGauge& g : fn_gauges_) {
    if (g.name == name) return;  // already registered
  }
  fn_gauges_.push_back({std::string(name), std::string(help), std::move(fn)});
}

std::vector<Registry::CounterSample> Registry::counter_samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<CounterSample> out;
  out.reserve(counters_.size());
  for (const auto& named : counters_) {
    out.push_back({named.name, named.help, named.metric.get()});
  }
  return out;
}

std::vector<Registry::GaugeSample> Registry::gauge_samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<GaugeSample> out;
  out.reserve(gauges_.size() + fn_gauges_.size());
  for (const auto& named : gauges_) {
    out.push_back(
        {named.name, named.help, static_cast<double>(named.metric.get())});
  }
  for (const FnGauge& g : fn_gauges_) {
    out.push_back({g.name, g.help, g.fn()});
  }
  return out;
}

std::vector<Registry::HistogramSample> Registry::histogram_samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<HistogramSample> out;
  out.reserve(histograms_.size());
  for (const auto& named : histograms_) {
    out.push_back({named.name, named.help, named.metric.snapshot()});
  }
  return out;
}

std::string_view family_of(std::string_view sample_name) {
  const std::size_t brace = sample_name.find('{');
  return brace == std::string_view::npos ? sample_name
                                         : sample_name.substr(0, brace);
}

}  // namespace themis::obs::live
