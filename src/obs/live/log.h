// Leveled structured logging for the live node.
//
// One process-wide logger, disabled by default so libraries stay silent under
// tests and benchmarks; the daemon turns it on from --log-level/--log-json.
// Every record carries a level, a subsystem component tag, a message and
// typed key/value fields, and renders as either a human line
//
//   2026-08-09T12:00:00.123Z INFO  [p2p] peer ready node=0 remote=1
//
// or one JSON object per line (JSONL, machine-parseable):
//
//   {"ts":"2026-08-09T12:00:00.123Z","level":"info","component":"p2p",
//    "msg":"peer ready","node":0,"remote":1}
//
// The level gate is one relaxed atomic load, so call sites below the level
// cost a branch; formatting and the sink mutex are paid only for records
// that pass.  Use the free functions:
//
//   live::log_info("p2p", "peer ready", {{"node", id}, {"remote", rid}});
#pragma once

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <string>
#include <string_view>
#include <variant>

namespace themis::obs::live {

enum class LogLevel : int { debug = 0, info, warn, error, off };

/// Parse "debug"/"info"/"warn"/"error"/"off"; anything else -> info.
LogLevel log_level_from(std::string_view name);
std::string_view to_string(LogLevel level);

/// One typed key/value field on a log record.
struct LogField {
  LogField(std::string_view k, std::string_view v)
      : key(k), value(std::string(v)) {}
  LogField(std::string_view k, const char* v)
      : key(k), value(std::string(v)) {}
  LogField(std::string_view k, std::uint64_t v) : key(k), value(v) {}
  LogField(std::string_view k, std::int64_t v) : key(k), value(v) {}
  LogField(std::string_view k, int v)
      : key(k), value(static_cast<std::int64_t>(v)) {}
  LogField(std::string_view k, double v) : key(k), value(v) {}
  LogField(std::string_view k, bool v) : key(k), value(v) {}

  std::string_view key;
  std::variant<std::string, std::uint64_t, std::int64_t, double, bool> value;
};

class Logger {
 public:
  /// The process-wide instance used by the log_* free functions.
  static Logger& global();

  void set_level(LogLevel level) {
    level_.store(static_cast<int>(level), std::memory_order_relaxed);
  }
  LogLevel level() const {
    return static_cast<LogLevel>(level_.load(std::memory_order_relaxed));
  }
  void set_json(bool json) { json_.store(json, std::memory_order_relaxed); }
  /// Redirect output (default stderr); pass nullptr to restore stderr.
  /// The stream must outlive the logger's use of it.
  void set_sink(std::ostream* sink);

  bool enabled(LogLevel level) const {
    return static_cast<int>(level) >=
           level_.load(std::memory_order_relaxed);
  }

  void log(LogLevel level, std::string_view component, std::string_view msg,
           std::initializer_list<LogField> fields = {});

 private:
  std::atomic<int> level_{static_cast<int>(LogLevel::off)};
  std::atomic<bool> json_{false};
  std::atomic<std::ostream*> sink_{nullptr};  ///< nullptr = stderr
};

inline void log_debug(std::string_view component, std::string_view msg,
                      std::initializer_list<LogField> fields = {}) {
  Logger& l = Logger::global();
  if (l.enabled(LogLevel::debug)) l.log(LogLevel::debug, component, msg, fields);
}
inline void log_info(std::string_view component, std::string_view msg,
                     std::initializer_list<LogField> fields = {}) {
  Logger& l = Logger::global();
  if (l.enabled(LogLevel::info)) l.log(LogLevel::info, component, msg, fields);
}
inline void log_warn(std::string_view component, std::string_view msg,
                     std::initializer_list<LogField> fields = {}) {
  Logger& l = Logger::global();
  if (l.enabled(LogLevel::warn)) l.log(LogLevel::warn, component, msg, fields);
}
inline void log_error(std::string_view component, std::string_view msg,
                      std::initializer_list<LogField> fields = {}) {
  Logger& l = Logger::global();
  if (l.enabled(LogLevel::error)) l.log(LogLevel::error, component, msg, fields);
}

}  // namespace themis::obs::live
