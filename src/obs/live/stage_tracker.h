// Transaction-lifecycle stage tracing for the live node.
//
// Every transaction the node touches is stamped as it crosses the pipeline:
//
//   submitted ──> verified ──> pooled ──> included ──> confirmed
//   (admission    (signature    (TxPool    (entered an   (on the main
//    entry)        checked)      insert)    accepted       chain)
//                                           block)
//
// Each stamp records a monotonic nanosecond timestamp in a bounded per-tx
// table AND feeds the latency since the previous reached stage into a fixed
// per-transition histogram in the live Registry — the per-stage p50/p99 the
// Gosig evaluation methodology calls for, measured on the real pipeline.  A
// submit→confirmed end-to-end histogram rides along.  Not every tx crosses
// every stage on every node (a non-mining node confirms straight from
// `pooled`; a relayed block can include transactions the node never
// admitted): the transition latency is always measured from the LATEST
// earlier stage actually stamped, and a stamp with no predecessor records
// nothing.
//
// Threading: stamps take one shard mutex (16 shards keyed by the tx id's
// first bytes) around a table write of a few words; the histograms behind
// them are wait-free.  The table is bounded — FIFO eviction per shard — so a
// long-lived node cannot leak per-tx state; an evicted transaction simply
// loses its per-tx breakdown (the aggregate histograms already absorbed it).
// Compiled out entirely under THEMIS_MIN_TELEMETRY.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string_view>
#include <unordered_map>

#include "common/bytes.h"
#include "obs/live/registry.h"

namespace themis::obs::live {

enum class TxStage : std::uint8_t {
  submitted = 0,  ///< entered admission (RPC or wire relay)
  verified,       ///< stateless + signature checks passed
  pooled,         ///< inserted into the TxPool
  included,       ///< carried by a block accepted into the tree
  confirmed,      ///< confirmed on the main chain
};
inline constexpr std::size_t kTxStageCount = 5;

std::string_view to_string(TxStage stage);

class StageTracker {
 public:
  /// Registers the per-transition histograms in `registry` (names
  /// themis_tx_stage_<stage>_seconds + themis_tx_e2e_seconds).  `capacity`
  /// bounds the per-tx table; beyond it the oldest entries are evicted.
  explicit StageTracker(Registry& registry, std::size_t capacity = 1 << 16);

  /// Stamp `id` at `stage` now.  Records the latency from the latest earlier
  /// stamped stage into that transition's histogram; re-stamps of an
  /// already-reached stage are ignored (first arrival wins — e.g. a tx
  /// re-included after a reorg keeps its original inclusion time).
  void stamp(const Hash32& id, TxStage stage);

  /// Nanosecond stamps per stage (0 = never reached), monotonic clock.
  using Stamps = std::array<std::uint64_t, kTxStageCount>;
  std::optional<Stamps> stamps(const Hash32& id) const;

  /// Total stamps recorded (diagnostic; relaxed).
  std::uint64_t stamped() const { return stamped_.load(std::memory_order_relaxed); }

 private:
  static constexpr std::size_t kShards = 16;
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<Hash32, Stamps, Hash32Hasher> by_id;
    std::deque<Hash32> fifo;  ///< insertion order, for eviction
  };
  Shard& shard_for(const Hash32& id) {
    return shards_[id[0] & (kShards - 1)];
  }
  const Shard& shard_for(const Hash32& id) const {
    return shards_[id[0] & (kShards - 1)];
  }

  std::size_t per_shard_capacity_;
  std::array<Shard, kShards> shards_;
  /// transition_[s] measures (latest earlier stage) -> s; [0] unused.
  std::array<Histogram*, kTxStageCount> transition_{};
  Histogram* end_to_end_ = nullptr;
  std::atomic<std::uint64_t> stamped_{0};
};

}  // namespace themis::obs::live
