// Lock-free metrics for the live node.
//
// The simulator's obs::Counters is a map-keyed, allocating registry driven by
// exactly one thread per run.  The daemon's hot paths — the epoll reactor,
// the combining admission leader, the miner, PeerManager reader threads and
// the TxPool shards — are concurrent, so they get their own primitives:
//
//   * Counter / Gauge: one cache-line-padded atomic each.  Bumps are a single
//     relaxed fetch_add — wait-free, no false sharing between neighbours.
//   * Histogram: fixed log-scale (power-of-two) latency buckets over
//     nanoseconds, 1 µs up to ~18 min, each bucket an atomic count.  record()
//     is two relaxed fetch_adds; percentiles are estimated at scrape time by
//     interpolating inside the winning bucket (≤ one bucket width of error,
//     i.e. at most 2x — the standard Prometheus-histogram trade).
//
// The Registry hands out stable references: components register their metrics
// ONCE at startup (mutex-guarded, find-or-create by name) and cache the
// reference, so the hot path never pays a string lookup or an allocation.
// Scrapers (JSON /metrics, Prometheus /metrics.prom) walk snapshot vectors
// under the same registration mutex — scraping never blocks a bump.
//
// Metric names follow Prometheus conventions ([a-zA-Z_:][a-zA-Z0-9_:]*) and
// may carry a fixed label set appended as `name{label="value"}`; samples
// sharing the name before '{' form one family in the exposition.
//
// Zero-cost-when-disabled: building with -DTHEMIS_MIN_TELEMETRY=ON compiles
// every bump/stamp to nothing (if constexpr on kTelemetryEnabled), which is
// the "compiled-min" baseline the BENCH_obs_overhead.json A/B measures the
// full build against.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace themis::obs::live {

#ifdef THEMIS_MIN_TELEMETRY
inline constexpr bool kTelemetryEnabled = false;
#else
inline constexpr bool kTelemetryEnabled = true;
#endif

/// One monotone counter on its own cache line.
struct alignas(64) Counter {
  void inc(std::uint64_t n = 1) {
    if constexpr (kTelemetryEnabled) {
      value_.fetch_add(n, std::memory_order_relaxed);
    } else {
      (void)n;
    }
  }
  std::uint64_t get() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// One instantaneous value (pool depth, ready peers, head height).
struct alignas(64) Gauge {
  void set(std::int64_t v) {
    if constexpr (kTelemetryEnabled) {
      value_.store(v, std::memory_order_relaxed);
    } else {
      (void)v;
    }
  }
  void add(std::int64_t d) {
    if constexpr (kTelemetryEnabled) {
      value_.fetch_add(d, std::memory_order_relaxed);
    } else {
      (void)d;
    }
  }
  std::int64_t get() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket log-scale latency histogram over nanoseconds.
///
/// Bucket i holds samples in (bound(i-1), bound(i)] with
/// bound(i) = 1024ns << i; the last bucket is the +Inf overflow.  Buckets
/// share cache lines (padding 32 buckets would cost 2 KiB per histogram);
/// same-bucket contention only slows the scraper's view, never a recorder.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 32;

  /// Upper bound of bucket `i` in nanoseconds (the last bucket is +Inf).
  static constexpr std::uint64_t bound_ns(std::size_t i) {
    return std::uint64_t{1024} << i;
  }

  static std::size_t bucket_index(std::uint64_t ns) {
    // Smallest i with ns <= 1024 << i, clamped into the overflow bucket.
    const std::uint64_t scaled = (ns + 1023) >> 10;  // ceil(ns / 1024)
    if (scaled <= 1) return 0;
    const auto idx = static_cast<std::size_t>(
        std::bit_width(scaled - 1));
    return idx < kBuckets ? idx : kBuckets - 1;
  }

  void record_ns(std::uint64_t ns) {
    if constexpr (kTelemetryEnabled) {
      counts_[bucket_index(ns)].fetch_add(1, std::memory_order_relaxed);
      sum_ns_.fetch_add(ns, std::memory_order_relaxed);
    } else {
      (void)ns;
    }
  }

  struct Snapshot {
    std::uint64_t counts[kBuckets] = {};
    std::uint64_t total = 0;
    std::uint64_t sum_ns = 0;
    /// Estimated quantile in nanoseconds, q in [0,1]; 0 when empty.
    double quantile_ns(double q) const;
    double mean_ns() const {
      return total == 0 ? 0.0
                        : static_cast<double>(sum_ns) /
                              static_cast<double>(total);
    }
  };
  Snapshot snapshot() const {
    Snapshot s;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      s.counts[i] = counts_[i].load(std::memory_order_relaxed);
      s.total += s.counts[i];
    }
    s.sum_ns = sum_ns_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  std::atomic<std::uint64_t> counts_[kBuckets] = {};
  std::atomic<std::uint64_t> sum_ns_{0};
};

/// RAII nanosecond timer feeding a Histogram (no-op on a null histogram).
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* h);
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* h_;
  std::uint64_t start_ns_ = 0;
};

/// Monotonic nanoseconds since an arbitrary (per-process) epoch.
std::uint64_t monotonic_ns();

class Registry {
 public:
  /// Find-or-create by name; the reference stays valid for the registry's
  /// lifetime (deque nodes are stable).  Call once at startup and cache.
  Counter& counter(std::string_view name, std::string_view help);
  Gauge& gauge(std::string_view name, std::string_view help);
  Histogram& histogram(std::string_view name, std::string_view help);

  /// Scrape-time gauge: `fn` is evaluated on every snapshot (for values a
  /// component already maintains atomically, e.g. TxPool::size()).  `fn`
  /// must be safe to call from any thread for the registry's lifetime.
  void gauge_fn(std::string_view name, std::string_view help,
                std::function<double()> fn);

  struct CounterSample {
    std::string name, help;
    std::uint64_t value = 0;
  };
  struct GaugeSample {
    std::string name, help;
    double value = 0.0;
  };
  struct HistogramSample {
    std::string name, help;
    Histogram::Snapshot snap;
  };
  /// Snapshots in registration order (callback gauges after owned gauges).
  std::vector<CounterSample> counter_samples() const;
  std::vector<GaugeSample> gauge_samples() const;
  std::vector<HistogramSample> histogram_samples() const;

 private:
  template <typename T>
  struct Named {
    std::string name, help;
    T metric;
  };
  struct FnGauge {
    std::string name, help;
    std::function<double()> fn;
  };

  mutable std::mutex mu_;  ///< registration + snapshot only, never a bump
  std::deque<Named<Counter>> counters_;
  std::deque<Named<Gauge>> gauges_;
  std::deque<Named<Histogram>> histograms_;
  std::vector<FnGauge> fn_gauges_;
  std::unordered_map<std::string, Counter*> counter_by_name_;
  std::unordered_map<std::string, Gauge*> gauge_by_name_;
  std::unordered_map<std::string, Histogram*> histogram_by_name_;
};

/// Family name: everything before the '{' of an optional label set.
std::string_view family_of(std::string_view sample_name);

}  // namespace themis::obs::live
