#include "obs/live/stage_tracker.h"

#include <algorithm>

namespace themis::obs::live {

std::string_view to_string(TxStage stage) {
  switch (stage) {
    case TxStage::submitted: return "submitted";
    case TxStage::verified: return "verified";
    case TxStage::pooled: return "pooled";
    case TxStage::included: return "included";
    case TxStage::confirmed: return "confirmed";
  }
  return "unknown";
}

StageTracker::StageTracker(Registry& registry, std::size_t capacity)
    : per_shard_capacity_(std::max<std::size_t>(1, capacity / kShards)) {
  transition_[static_cast<std::size_t>(TxStage::verified)] =
      &registry.histogram(
          "themis_tx_stage_verify_seconds",
          "Admission latency: submit to signature-verified.");
  transition_[static_cast<std::size_t>(TxStage::pooled)] = &registry.histogram(
      "themis_tx_stage_pool_seconds",
      "Admission latency: signature-verified to pool insert.");
  transition_[static_cast<std::size_t>(TxStage::included)] =
      &registry.histogram(
          "themis_tx_stage_inclusion_seconds",
          "Pool wait: pool insert to inclusion in an accepted block.");
  transition_[static_cast<std::size_t>(TxStage::confirmed)] =
      &registry.histogram(
          "themis_tx_stage_confirm_seconds",
          "Confirmation latency from the latest earlier stage reached.");
  end_to_end_ = &registry.histogram(
      "themis_tx_e2e_seconds",
      "End-to-end transaction latency: submit to main-chain confirmation.");
}

void StageTracker::stamp(const Hash32& id, TxStage stage) {
  if constexpr (!kTelemetryEnabled) {
    (void)id;
    (void)stage;
    return;
  }
  const std::uint64_t now = monotonic_ns();
  const auto s = static_cast<std::size_t>(stage);
  std::uint64_t latency_from_prev = 0;
  std::uint64_t latency_e2e = 0;
  bool recorded = false;
  {
    Shard& shard = shard_for(id);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto [it, inserted] = shard.by_id.try_emplace(id);
    if (inserted) {
      shard.fifo.push_back(id);
      if (shard.fifo.size() > per_shard_capacity_) {
        shard.by_id.erase(shard.fifo.front());
        shard.fifo.pop_front();
        // The new entry could itself have been evicted on a pathological
        // shard; re-check so `it` stays valid.
        if (!shard.by_id.contains(id)) return;
      }
    }
    Stamps& stamps = it->second;
    if (stamps[s] != 0) return;  // first arrival wins
    stamps[s] = now;
    // Latest earlier stage actually reached, if any.
    for (std::size_t prev = s; prev-- > 0;) {
      if (stamps[prev] != 0) {
        latency_from_prev = now - stamps[prev];
        recorded = true;
        break;
      }
    }
    if (stage == TxStage::confirmed &&
        stamps[static_cast<std::size_t>(TxStage::submitted)] != 0) {
      latency_e2e =
          now - stamps[static_cast<std::size_t>(TxStage::submitted)];
    }
  }
  stamped_.fetch_add(1, std::memory_order_relaxed);
  if (recorded && transition_[s] != nullptr) {
    transition_[s]->record_ns(latency_from_prev);
  }
  if (stage == TxStage::confirmed && latency_e2e != 0) {
    end_to_end_->record_ns(latency_e2e);
  }
}

std::optional<StageTracker::Stamps> StageTracker::stamps(
    const Hash32& id) const {
  const Shard& shard = shard_for(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.by_id.find(id);
  if (it == shard.by_id.end()) return std::nullopt;
  return it->second;
}

}  // namespace themis::obs::live
