// Prometheus text exposition (version 0.0.4) for a live::Registry.
//
// Renders every counter, gauge and histogram the registry holds:
//
//   # HELP themis_tx_accepted_total Transactions admitted into the pool.
//   # TYPE themis_tx_accepted_total counter
//   themis_tx_accepted_total 1234
//   # TYPE themis_tx_stage_confirm_seconds histogram
//   themis_tx_stage_confirm_seconds_bucket{le="0.001048576"} 17
//   ...
//   themis_tx_stage_confirm_seconds_bucket{le="+Inf"} 420
//   themis_tx_stage_confirm_seconds_sum 12.75
//   themis_tx_stage_confirm_seconds_count 420
//
// Histogram bucket bounds are the registry's fixed log-scale nanosecond
// bounds converted to seconds (Prometheus base units).  Samples whose name
// carries a label set (`family{label="v"}`) are grouped: HELP/TYPE are
// emitted once per family, in first-registration order.
#pragma once

#include <string>

#include "obs/live/registry.h"

namespace themis::obs::live {

/// Render the whole registry in Prometheus text format.
std::string render_prometheus(const Registry& registry);

}  // namespace themis::obs::live
