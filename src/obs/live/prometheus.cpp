#include "obs/live/prometheus.h"

#include <cinttypes>
#include <cstdio>
#include <unordered_set>

namespace themis::obs::live {

namespace {

/// Shortest decimal that round-trips a double (Prometheus values are
/// float64); integers come out without an exponent or trailing zeros.
std::string format_value(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  double parsed = 0.0;
  for (int precision = 1; precision < 17; ++precision) {
    char attempt[64];
    std::snprintf(attempt, sizeof(attempt), "%.*g", precision, v);
    std::sscanf(attempt, "%lf", &parsed);
    if (parsed == v) return attempt;
  }
  return buf;
}

/// Emit HELP/TYPE once per family (the name before any '{' label set).
void emit_header(std::string& out, std::unordered_set<std::string>& seen,
                 std::string_view name, const std::string& help,
                 std::string_view type) {
  const std::string family(family_of(name));
  if (!seen.insert(family).second) return;
  if (!help.empty()) {
    out += "# HELP ";
    out += family;
    out += ' ';
    out += help;
    out += '\n';
  }
  out += "# TYPE ";
  out += family;
  out += ' ';
  out += type;
  out += '\n';
}

/// Splice `extra` into a sample name that may already carry labels:
/// f("x", le) -> x{le}, f("x{a=\"b\"}", le) -> x{a="b",le}.
std::string with_label(std::string_view name, const std::string& extra,
                       const char* suffix) {
  const std::string family(family_of(name));
  std::string labels;
  if (family.size() < name.size()) {
    // strip the braces from the existing label set
    labels = std::string(name.substr(family.size() + 1,
                                     name.size() - family.size() - 2));
  }
  std::string out = family;
  out += suffix;
  out += '{';
  if (!labels.empty()) {
    out += labels;
    out += ',';
  }
  out += extra;
  out += '}';
  return out;
}

}  // namespace

std::string render_prometheus(const Registry& registry) {
  std::string out;
  out.reserve(4096);
  std::unordered_set<std::string> seen;
  char line[256];

  for (const auto& s : registry.counter_samples()) {
    emit_header(out, seen, s.name, s.help, "counter");
    std::snprintf(line, sizeof(line), "%s %" PRIu64 "\n", s.name.c_str(),
                  s.value);
    out += line;
  }
  for (const auto& s : registry.gauge_samples()) {
    emit_header(out, seen, s.name, s.help, "gauge");
    out += s.name;
    out += ' ';
    out += format_value(s.value);
    out += '\n';
  }
  for (const auto& s : registry.histogram_samples()) {
    emit_header(out, seen, s.name, s.help, "histogram");
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
      cumulative += s.snap.counts[i];
      const std::string label =
          i + 1 == Histogram::kBuckets
              ? std::string("le=\"+Inf\"")
              : "le=\"" +
                    format_value(static_cast<double>(Histogram::bound_ns(i)) /
                                 1e9) +
                    "\"";
      std::snprintf(line, sizeof(line), "%s %" PRIu64 "\n",
                    with_label(s.name, label, "_bucket").c_str(), cumulative);
      out += line;
    }
    const std::string family(family_of(s.name));
    std::string labels;
    if (family.size() < s.name.size()) {
      labels = std::string(
          s.name.substr(family.size()));  // keep the braces verbatim
    }
    out += family + "_sum" + labels + ' ' +
           format_value(static_cast<double>(s.snap.sum_ns) / 1e9) + '\n';
    std::snprintf(line, sizeof(line), "%s_count%s %" PRIu64 "\n",
                  family.c_str(), labels.c_str(), s.snap.total);
    out += line;
  }
  return out;
}

}  // namespace themis::obs::live
