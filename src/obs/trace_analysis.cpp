#include "obs/trace_analysis.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "metrics/equality.h"

namespace themis::obs {

namespace {

void touch(NodeTimeline& node, std::int64_t t_ns) {
  if (node.first_ns < 0) node.first_ns = t_ns;
  node.first_ns = std::min(node.first_ns, t_ns);
  node.last_ns = std::max(node.last_ns, t_ns);
}

double nearest_rank(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto n = static_cast<double>(sorted.size());
  auto rank = static_cast<std::size_t>(std::ceil(p / 100.0 * n));
  if (rank == 0) rank = 1;
  return sorted[std::min(rank - 1, sorted.size() - 1)];
}

}  // namespace

TraceSummary analyze_trace(std::span<const TraceEvent> events) {
  TraceSummary summary;
  summary.total_events = events.size();

  // block hash -> simulated mining time, for propagation latency.
  std::unordered_map<std::string, std::int64_t> mined_at;
  std::vector<double> propagation_s;
  std::vector<std::pair<std::uint64_t, ledger::NodeId>> chain;  // height, producer
  std::uint64_t depth_sum = 0;

  bool first = true;
  for (const TraceEvent& event : events) {
    if (first) {
      summary.first_ns = event.t_ns;
      summary.last_ns = event.t_ns;
      first = false;
    }
    summary.first_ns = std::min(summary.first_ns, event.t_ns);
    summary.last_ns = std::max(summary.last_ns, event.t_ns);

    const auto node_id =
        static_cast<std::uint32_t>(event.int_or("node", 0));

    if (event.ev == "run_meta") {
      summary.algorithm = event.str_or("algorithm", "");
      summary.n_nodes = static_cast<std::uint64_t>(event.int_or("n_nodes", 0));
      summary.delta = static_cast<std::uint64_t>(event.int_or("delta", 0));
      summary.seed = static_cast<std::uint64_t>(event.int_or("seed", 0));
    } else if (event.ev == "block_mined") {
      NodeTimeline& node = summary.nodes[node_id];
      ++node.mined;
      if (event.bool_or("suppressed", false)) ++node.suppressed;
      touch(node, event.t_ns);
      mined_at.emplace(std::string(event.str_or("hash", "")), event.t_ns);
    } else if (event.ev == "block_received") {
      NodeTimeline& node = summary.nodes[node_id];
      ++node.received;
      touch(node, event.t_ns);
      const auto it = mined_at.find(std::string(event.str_or("hash", "")));
      if (it != mined_at.end() && event.t_ns >= it->second) {
        propagation_s.push_back(
            static_cast<double>(event.t_ns - it->second) / 1e9);
      }
    } else if (event.ev == "block_adopted") {
      NodeTimeline& node = summary.nodes[node_id];
      ++node.adopted;
      touch(node, event.t_ns);
    } else if (event.ev == "reorg") {
      NodeTimeline& node = summary.nodes[node_id];
      ++node.reorgs;
      touch(node, event.t_ns);
      const auto depth = static_cast<std::uint64_t>(event.int_or("depth", 0));
      ++summary.reorgs.count;
      ++summary.reorgs.depth_counts[depth];
      summary.reorgs.max_depth = std::max(summary.reorgs.max_depth, depth);
      depth_sum += depth;
    } else if (event.ev == "gossip_send") {
      ++summary.gossip_sends;
      summary.gossip_bytes +=
          static_cast<std::uint64_t>(event.int_or("bytes", 0));
    } else if (event.ev == "gossip_dup") {
      ++summary.gossip_dup_drops;
    } else if (event.ev == "pbft_view_change") {
      ++summary.view_changes;
      touch(summary.nodes[node_id], event.t_ns);
    } else if (event.ev == "chain_block") {
      chain.emplace_back(
          static_cast<std::uint64_t>(event.int_or("height", 0)),
          static_cast<ledger::NodeId>(event.int_or("producer", 0)));
    } else if (event.ev == "retarget") {
      summary.base_difficulty_per_epoch.push_back(
          event.num_or("new_base", 0.0));
    }
  }

  if (summary.reorgs.count > 0) {
    summary.reorgs.mean_depth = static_cast<double>(depth_sum) /
                                static_cast<double>(summary.reorgs.count);
  }

  std::sort(propagation_s.begin(), propagation_s.end());
  summary.propagation.samples = propagation_s.size();
  if (!propagation_s.empty()) {
    summary.propagation.p50_s = nearest_rank(propagation_s, 50);
    summary.propagation.p90_s = nearest_rank(propagation_s, 90);
    summary.propagation.p99_s = nearest_rank(propagation_s, 99);
    summary.propagation.max_s = propagation_s.back();
  }

  // Final-chain snapshot: traced in height order already, but sort defensively
  // (stable under merged traces) before deriving the producer sequence.
  std::sort(chain.begin(), chain.end());
  summary.chain_producers.reserve(chain.size());
  for (const auto& [height, producer] : chain) {
    summary.chain_producers.push_back(producer);
  }
  if (summary.delta > 0 && summary.n_nodes > 0 &&
      !summary.chain_producers.empty()) {
    summary.per_epoch_sigma_f2 = metrics::per_epoch_frequency_variance(
        summary.chain_producers, summary.delta, summary.n_nodes);
  }

  return summary;
}

void print_summary(std::ostream& out, const TraceSummary& summary) {
  out << "== trace summary ==\n";
  out << "events: " << summary.total_events << "  span: "
      << static_cast<double>(summary.last_ns - summary.first_ns) / 1e9
      << "s simulated\n";
  if (!summary.algorithm.empty() || summary.n_nodes > 0) {
    out << "run: algorithm=" << summary.algorithm
        << " n_nodes=" << summary.n_nodes << " delta=" << summary.delta
        << " seed=" << summary.seed << "\n";
  }

  if (!summary.nodes.empty()) {
    out << "\n-- per-node timeline --\n";
    out << "node  mined  suppressed  received  adopted  reorgs  first_s  last_s\n";
    for (const auto& [id, node] : summary.nodes) {
      out << id << "  " << node.mined << "  " << node.suppressed << "  "
          << node.received << "  " << node.adopted << "  " << node.reorgs
          << "  " << (node.first_ns < 0 ? 0.0 : static_cast<double>(node.first_ns) / 1e9)
          << "  " << (node.last_ns < 0 ? 0.0 : static_cast<double>(node.last_ns) / 1e9)
          << "\n";
    }
  }

  out << "\n-- reorgs --\n";
  out << "count=" << summary.reorgs.count
      << " mean_depth=" << summary.reorgs.mean_depth
      << " max_depth=" << summary.reorgs.max_depth << "\n";
  for (const auto& [depth, count] : summary.reorgs.depth_counts) {
    out << "  depth " << depth << ": " << count << "\n";
  }

  out << "\n-- propagation (mined -> received, per node) --\n";
  out << "samples=" << summary.propagation.samples
      << " p50=" << summary.propagation.p50_s << "s"
      << " p90=" << summary.propagation.p90_s << "s"
      << " p99=" << summary.propagation.p99_s << "s"
      << " max=" << summary.propagation.max_s << "s\n";

  if (summary.gossip_sends > 0 || summary.gossip_dup_drops > 0) {
    out << "\n-- gossip --\n";
    out << "sends=" << summary.gossip_sends << " bytes=" << summary.gossip_bytes
        << " dup_drops=" << summary.gossip_dup_drops;
    const std::uint64_t deliveries =
        summary.gossip_sends;  // every send is delivered or dup-dropped
    if (deliveries > 0) {
      out << " redundant_ratio="
          << static_cast<double>(summary.gossip_dup_drops) /
                 static_cast<double>(deliveries);
    }
    out << "\n";
  }

  if (summary.view_changes > 0) {
    out << "\n-- pbft --\nview_changes=" << summary.view_changes << "\n";
  }

  if (!summary.per_epoch_sigma_f2.empty()) {
    out << "\n-- per-epoch sigma_f^2 (Eq. 1, exact) --\n";
    for (std::size_t e = 0; e < summary.per_epoch_sigma_f2.size(); ++e) {
      out << "epoch " << e << ": " << summary.per_epoch_sigma_f2[e] << "\n";
    }
  }
  if (!summary.base_difficulty_per_epoch.empty()) {
    out << "\n-- D_base per epoch (retargets) --\n";
    for (std::size_t e = 0; e < summary.base_difficulty_per_epoch.size(); ++e) {
      out << "epoch " << e + 1 << ": " << summary.base_difficulty_per_epoch[e]
          << "\n";
    }
  }
}

}  // namespace themis::obs
