#include "obs/report.h"

#include <algorithm>
#include <iomanip>
#include <vector>

namespace themis::obs {

namespace {

void write_links(std::ostream& out, const Counters& counters) {
  const auto& links = counters.links();
  if (links.empty()) return;
  std::uint64_t total_msgs = 0;
  std::uint64_t total_bytes = 0;
  for (const auto& [key, stat] : links) {
    total_msgs += stat.messages;
    total_bytes += stat.bytes;
  }
  out << "links: " << links.size() << " directed links, " << total_msgs
      << " messages, " << total_bytes << " bytes\n";

  // Busiest links by bytes (ties broken by the (from, to) key so the listing
  // is deterministic).
  using Entry = std::pair<std::pair<std::uint32_t, std::uint32_t>, LinkStat>;
  std::vector<Entry> busiest(links.begin(), links.end());
  std::sort(busiest.begin(), busiest.end(), [](const Entry& a, const Entry& b) {
    if (a.second.bytes != b.second.bytes) return a.second.bytes > b.second.bytes;
    return a.first < b.first;
  });
  const std::size_t top = std::min<std::size_t>(busiest.size(), 5);
  for (std::size_t i = 0; i < top; ++i) {
    const auto& [key, stat] = busiest[i];
    out << "  link " << key.first << " -> " << key.second << ": "
        << stat.messages << " msgs, " << stat.bytes << " bytes\n";
  }
}

}  // namespace

void write_report(std::ostream& out, const Observability& obs) {
  out << "== run report ==\n";

  if (!obs.counters.counters().empty()) {
    out << "-- counters --\n";
    for (const auto& [name, value] : obs.counters.counters()) {
      out << "  " << name << " = " << value << "\n";
    }
  }

  if (!obs.counters.histograms().empty()) {
    out << "-- histograms --\n";
    for (const auto& [name, h] : obs.counters.histograms()) {
      out << "  " << name << ": n=" << h.count();
      if (h.count() > 0) {
        out << " mean=" << h.mean() << " p50=" << h.percentile(50)
            << " p90=" << h.percentile(90) << " p99=" << h.percentile(99)
            << " max=" << h.max();
      }
      out << "\n";
    }
  }

  if (!obs.counters.series().empty()) {
    out << "-- series --\n";
    for (const auto& [name, values] : obs.counters.series()) {
      out << "  " << name << ":";
      for (const double v : values) out << ' ' << v;
      out << "\n";
    }
  }

  if (!obs.counters.links().empty()) {
    out << "-- gossip traffic --\n";
    write_links(out, obs.counters);
  }

  if (!obs.profiler.scopes().empty()) {
    out << "-- profile (wall clock; not reproducible) --\n";
    for (const auto& [name, stat] : obs.profiler.scopes()) {
      out << "  " << name << ": calls=" << stat.calls << " total="
          << stat.total_ms() << "ms ns/call=" << stat.ns_per_call() << "\n";
    }
  }

  out << "trace events buffered: " << obs.tracer.size() << "\n";
}

}  // namespace themis::obs
