// Reader for the JSONL traces EventTracer writes.
//
// The schema is deliberately flat — one object per line, string keys, scalar
// values (integer, double, bool, string) — so a small hand-rolled parser
// covers it exactly; there is no external JSON dependency in the image.
// Unknown event kinds and extra fields pass through untouched, so the
// analyzer stays forward-compatible with new event types.
#pragma once

#include <cstdint>
#include <istream>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace themis::obs {

struct TraceValue {
  enum class Kind { kInt, kDouble, kBool, kString };
  Kind kind = Kind::kInt;
  std::int64_t i = 0;   ///< kInt (also set, truncated, for kDouble)
  double d = 0.0;       ///< kDouble (also set for kInt)
  bool b = false;
  std::string s;
};

struct TraceEvent {
  std::int64_t t_ns = 0;
  std::string ev;
  /// Remaining fields in line order (t_ns and ev are lifted out).
  std::vector<std::pair<std::string, TraceValue>> fields;

  const TraceValue* field(std::string_view key) const;
  std::int64_t int_or(std::string_view key, std::int64_t fallback) const;
  double num_or(std::string_view key, double fallback) const;
  std::string_view str_or(std::string_view key,
                          std::string_view fallback) const;
  bool bool_or(std::string_view key, bool fallback) const;
};

/// Parse one JSONL record.  Returns nullopt on malformed input.
std::optional<TraceEvent> parse_trace_line(std::string_view line);

struct ReadResult {
  std::vector<TraceEvent> events;
  std::size_t malformed_lines = 0;  ///< skipped (blank lines do not count)
};

ReadResult read_trace(std::istream& in);

}  // namespace themis::obs
