#include "obs/trace.h"

#include <charconv>
#include <cstdio>
#include <fstream>

namespace themis::obs {

void append_double(std::string& out, double value) {
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), value);
  out.append(buf, res.ptr);
}

void append_json_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void EventTracer::emit(SimTime t, std::string_view ev,
                       std::initializer_list<Field> fields) {
  if (!enabled_) return;
  std::string line;
  line.reserve(64 + 24 * fields.size());
  line += "{\"t_ns\":";
  line += std::to_string(t.count_nanos());
  line += ",\"ev\":\"";
  append_json_escaped(line, ev);
  line += '"';
  for (const Field& field : fields) {
    line += ",\"";
    append_json_escaped(line, field.key);
    line += "\":";
    switch (field.type) {
      case Field::Type::kU64:
        line += std::to_string(field.u);
        break;
      case Field::Type::kI64:
        line += std::to_string(field.i);
        break;
      case Field::Type::kF64:
        append_double(line, field.f);
        break;
      case Field::Type::kBool:
        line += field.b ? "true" : "false";
        break;
      case Field::Type::kStr:
        line += '"';
        append_json_escaped(line, field.s);
        line += '"';
        break;
    }
  }
  line += '}';
  lines_.push_back(std::move(line));
}

void EventTracer::write_jsonl(std::ostream& out) const {
  for (const std::string& line : lines_) out << line << '\n';
}

bool EventTracer::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  write_jsonl(out);
  return static_cast<bool>(out);
}

}  // namespace themis::obs
