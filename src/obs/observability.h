// One bundle of everything a run can observe: trace, counters, profiler.
//
// An Observability instance is attached to a net::Simulation
// (sim.set_obs(&obs)); components built on that simulation (GossipNetwork,
// PowNode, PbftReplica, PoxExperiment) discover it through sim.obs() and
// record into it.  A null pointer — the default — disables everything at the
// cost of one branch per hook site.
//
// Threading contract: one Observability belongs to exactly one run (one
// Simulation).  The parallel trial runner attaches a caller's instance to a
// single designated trial (point 0, trial 0 — the base seed), so no locking
// is needed and multi-trial results stay bit-identical with or without
// observation.
#pragma once

#include "obs/counters.h"
#include "obs/profile.h"
#include "obs/trace.h"

namespace themis::obs {

struct Observability {
  EventTracer tracer;
  Counters counters;
  Profiler profiler;
  /// Set by the trial runner when a sweep adopts this instance; later sweeps
  /// in the same process leave a claimed instance alone (so a driver that
  /// runs a PoX sweep and then a PBFT sweep traces the first one).
  bool claimed = false;
};

}  // namespace themis::obs
