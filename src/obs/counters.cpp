#include "obs/counters.h"

#include <cmath>

namespace themis::obs {

double Histogram::min() const {
  if (values_.empty()) return 0.0;
  return sorted().front();
}

double Histogram::max() const {
  if (values_.empty()) return 0.0;
  return sorted().back();
}

double Histogram::mean() const {
  if (values_.empty()) return 0.0;
  double sum = 0.0;
  for (const double v : values_) sum += v;
  return sum / static_cast<double>(values_.size());
}

double Histogram::percentile(double p) const {
  if (values_.empty()) return 0.0;
  const std::vector<double>& s = sorted();
  const double clamped = std::clamp(p, 0.0, 100.0);
  // Nearest-rank: smallest value with at least ceil(p/100 * n) samples <= it.
  const auto n = static_cast<double>(s.size());
  const auto rank = static_cast<std::size_t>(std::ceil(clamped / 100.0 * n));
  const std::size_t idx = rank == 0 ? 0 : rank - 1;
  return s[std::min(idx, s.size() - 1)];
}

}  // namespace themis::obs
