// End-of-run report rendering for an Observability bundle.
#pragma once

#include <ostream>

#include "obs/observability.h"

namespace themis::obs {

/// Human-readable run report: counters, histograms (count/mean/percentiles),
/// per-epoch series, gossip link-traffic summary and wall-clock profile
/// scopes.  Deterministic iteration order (everything is in ordered maps);
/// only the profile section contains wall-clock (non-reproducible) numbers.
void write_report(std::ostream& out, const Observability& obs);

}  // namespace themis::obs
