// Structured event tracing for the discrete-event simulator.
//
// EventTracer records typed events as JSONL (one flat JSON object per line),
// keyed by simulated time in integer nanoseconds (`t_ns`), so traces are
// exact, diffable and mergeable.  Records are pre-rendered into an in-memory
// buffer and written out once at the end of a run — tracing never does I/O
// from inside the event loop and never perturbs simulation state, so a
// traced run is bit-identical to an untraced one.
//
// Zero overhead when disabled: every emission site guards on `enabled()`
// (one predictable branch); a tracer that was never enabled allocates
// nothing.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "common/sim_time.h"

namespace themis::obs {

/// One key/value pair of a trace record.  Built via the static factories so
/// call sites stay readable and integer widths are explicit.
struct Field {
  enum class Type { kU64, kI64, kF64, kBool, kStr };

  std::string_view key;
  Type type = Type::kU64;
  std::uint64_t u = 0;
  std::int64_t i = 0;
  double f = 0.0;
  bool b = false;
  std::string_view s;

  static Field u64(std::string_view key, std::uint64_t value) {
    Field field;
    field.key = key;
    field.type = Type::kU64;
    field.u = value;
    return field;
  }
  static Field i64(std::string_view key, std::int64_t value) {
    Field field;
    field.key = key;
    field.type = Type::kI64;
    field.i = value;
    return field;
  }
  static Field f64(std::string_view key, double value) {
    Field field;
    field.key = key;
    field.type = Type::kF64;
    field.f = value;
    return field;
  }
  static Field boolean(std::string_view key, bool value) {
    Field field;
    field.key = key;
    field.type = Type::kBool;
    field.b = value;
    return field;
  }
  static Field str(std::string_view key, std::string_view value) {
    Field field;
    field.key = key;
    field.type = Type::kStr;
    field.s = value;
    return field;
  }
};

class EventTracer {
 public:
  void enable(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  /// Append one record: {"t_ns":<t>,"ev":"<ev>",<fields...>}.  A no-op when
  /// the tracer is disabled, but call sites should still guard on enabled()
  /// so argument evaluation (hash hex-encoding etc.) is skipped too.
  void emit(SimTime t, std::string_view ev, std::initializer_list<Field> fields);

  std::size_t size() const { return lines_.size(); }
  const std::vector<std::string>& lines() const { return lines_; }

  /// Write the buffered records as JSONL.
  void write_jsonl(std::ostream& out) const;
  /// Convenience: write to a file path; returns false on I/O failure.
  bool write_file(const std::string& path) const;

 private:
  bool enabled_ = false;
  std::vector<std::string> lines_;
};

/// Render a double with the shortest round-trippable decimal representation
/// (std::to_chars), so trace consumers read back the exact value.
void append_double(std::string& out, double value);

/// Append `s` JSON-escaped (quotes, backslashes, control characters).
void append_json_escaped(std::string& out, std::string_view s);

}  // namespace themis::obs
