// Summaries over a parsed trace — the analysis behind the `themis-trace`
// CLI, exposed as a library so tests can assert on it directly.
//
// The per-epoch sigma_f^2 column is computed by feeding the trace's
// `chain_block` producer sequence into the very same
// metrics::per_epoch_frequency_variance() the experiment harness uses, so a
// trace analysis agrees with PoxExperiment::per_epoch_frequency_variance()
// exactly (bit for bit), not just approximately.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <span>
#include <string>
#include <vector>

#include "ledger/types.h"
#include "obs/trace_reader.h"

namespace themis::obs {

struct NodeTimeline {
  std::uint64_t mined = 0;
  std::uint64_t suppressed = 0;
  std::uint64_t received = 0;
  std::uint64_t adopted = 0;
  std::uint64_t reorgs = 0;
  std::int64_t first_ns = -1;  ///< first event involving this node (-1 = none)
  std::int64_t last_ns = -1;
};

struct ReorgSummary {
  std::uint64_t count = 0;
  std::uint64_t max_depth = 0;
  double mean_depth = 0.0;
  std::map<std::uint64_t, std::uint64_t> depth_counts;  ///< depth -> reorgs
};

struct PropagationSummary {
  /// (block, receiving node) pairs with both a mined and a received record.
  std::uint64_t samples = 0;
  double p50_s = 0.0;
  double p90_s = 0.0;
  double p99_s = 0.0;
  double max_s = 0.0;
};

struct TraceSummary {
  // From the run_meta record (empty/0 when absent).
  std::string algorithm;
  std::uint64_t n_nodes = 0;
  std::uint64_t delta = 0;
  std::uint64_t seed = 0;

  std::uint64_t total_events = 0;
  std::int64_t first_ns = 0;
  std::int64_t last_ns = 0;

  std::map<std::uint32_t, NodeTimeline> nodes;
  ReorgSummary reorgs;
  PropagationSummary propagation;

  std::uint64_t gossip_sends = 0;
  std::uint64_t gossip_bytes = 0;
  std::uint64_t gossip_dup_drops = 0;

  std::uint64_t view_changes = 0;  ///< PBFT traces

  /// Final main chain as recorded by the chain_block snapshot, height order.
  std::vector<ledger::NodeId> chain_producers;
  /// sigma_f^2 per full epoch of `delta` blocks (Eq. 1), exact.
  std::vector<double> per_epoch_sigma_f2;
  /// D_base per epoch from retarget records (empty when not traced).
  std::vector<double> base_difficulty_per_epoch;
};

TraceSummary analyze_trace(std::span<const TraceEvent> events);

/// Render the CLI's text report.
void print_summary(std::ostream& out, const TraceSummary& summary);

}  // namespace themis::obs
