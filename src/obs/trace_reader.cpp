#include "obs/trace_reader.h"

#include <cctype>
#include <charconv>

namespace themis::obs {

const TraceValue* TraceEvent::field(std::string_view key) const {
  for (const auto& [name, value] : fields) {
    if (name == key) return &value;
  }
  return nullptr;
}

std::int64_t TraceEvent::int_or(std::string_view key,
                                std::int64_t fallback) const {
  const TraceValue* v = field(key);
  if (v == nullptr) return fallback;
  if (v->kind == TraceValue::Kind::kInt) return v->i;
  if (v->kind == TraceValue::Kind::kDouble) return static_cast<std::int64_t>(v->d);
  return fallback;
}

double TraceEvent::num_or(std::string_view key, double fallback) const {
  const TraceValue* v = field(key);
  if (v == nullptr) return fallback;
  if (v->kind == TraceValue::Kind::kInt) return static_cast<double>(v->i);
  if (v->kind == TraceValue::Kind::kDouble) return v->d;
  return fallback;
}

std::string_view TraceEvent::str_or(std::string_view key,
                                    std::string_view fallback) const {
  const TraceValue* v = field(key);
  if (v == nullptr || v->kind != TraceValue::Kind::kString) return fallback;
  return v->s;
}

bool TraceEvent::bool_or(std::string_view key, bool fallback) const {
  const TraceValue* v = field(key);
  if (v == nullptr || v->kind != TraceValue::Kind::kBool) return fallback;
  return v->b;
}

namespace {

/// Cursor over one line.  The grammar is the flat subset EventTracer emits:
///   object  := '{' (pair (',' pair)*)? '}'
///   pair    := string ':' value
///   value   := string | number | 'true' | 'false' | 'null'
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  bool parse(TraceEvent& out) {
    skip_ws();
    if (!consume('{')) return false;
    skip_ws();
    if (consume('}')) return finish(out);
    for (;;) {
      std::string key;
      TraceValue value;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!consume(':')) return false;
      skip_ws();
      if (!parse_value(value)) return false;
      if (key == "t_ns" && value.kind == TraceValue::Kind::kInt) {
        out.t_ns = value.i;
      } else if (key == "ev" && value.kind == TraceValue::Kind::kString) {
        out.ev = std::move(value.s);
      } else {
        out.fields.emplace_back(std::move(key), std::move(value));
      }
      skip_ws();
      if (consume(',')) {
        skip_ws();
        continue;
      }
      if (consume('}')) return finish(out);
      return false;
    }
  }

 private:
  bool finish(TraceEvent& out) {
    skip_ws();
    return pos_ == text_.size() && !out.ev.empty();
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return false;
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) return false;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return false;
          unsigned code = 0;
          const auto res = std::from_chars(text_.data() + pos_,
                                           text_.data() + pos_ + 4, code, 16);
          if (res.ec != std::errc() || res.ptr != text_.data() + pos_ + 4) {
            return false;
          }
          pos_ += 4;
          // The tracer only escapes control characters this way; anything in
          // the BMP below 0x80 maps to one byte.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else {
            return false;  // outside the schema EventTracer emits
          }
          break;
        }
        default:
          return false;
      }
    }
    return false;
  }

  bool parse_value(TraceValue& out) {
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '"') {
      out.kind = TraceValue::Kind::kString;
      return parse_string(out.s);
    }
    if (text_.substr(pos_).starts_with("true")) {
      pos_ += 4;
      out.kind = TraceValue::Kind::kBool;
      out.b = true;
      return true;
    }
    if (text_.substr(pos_).starts_with("false")) {
      pos_ += 5;
      out.kind = TraceValue::Kind::kBool;
      out.b = false;
      return true;
    }
    if (text_.substr(pos_).starts_with("null")) {
      pos_ += 4;
      out.kind = TraceValue::Kind::kInt;
      out.i = 0;
      return true;
    }
    return parse_number(out);
  }

  bool parse_number(TraceValue& out) {
    const std::size_t start = pos_;
    bool is_double = false;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '-' || c == '+') {
        is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    if (token.empty()) return false;
    if (!is_double) {
      std::int64_t value = 0;
      const auto res =
          std::from_chars(token.data(), token.data() + token.size(), value);
      if (res.ec == std::errc() && res.ptr == token.data() + token.size()) {
        out.kind = TraceValue::Kind::kInt;
        out.i = value;
        out.d = static_cast<double>(value);
        return true;
      }
      // Fall through: integer overflow parses as double below.
    }
    double value = 0.0;
    const auto res =
        std::from_chars(token.data(), token.data() + token.size(), value);
    if (res.ec != std::errc() || res.ptr != token.data() + token.size()) {
      return false;
    }
    out.kind = TraceValue::Kind::kDouble;
    out.d = value;
    out.i = static_cast<std::int64_t>(value);
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<TraceEvent> parse_trace_line(std::string_view line) {
  TraceEvent event;
  Parser parser(line);
  if (!parser.parse(event)) return std::nullopt;
  return event;
}

ReadResult read_trace(std::istream& in) {
  ReadResult result;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    auto event = parse_trace_line(line);
    if (event.has_value()) {
      result.events.push_back(std::move(*event));
    } else {
      ++result.malformed_lines;
    }
  }
  return result;
}

}  // namespace themis::obs
