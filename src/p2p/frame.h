// Framed wire transport for the real-network p2p layer.
//
// Everything that crosses a TCP connection is one frame:
//
//   magic(4) | type(4) | length(4) | payload(length) | checksum(4)
//
// little-endian, with the checksum being the first 4 bytes of
// sha256d(payload) — the same integrity rule BlockStore applies to its
// on-disk records, so a block read from a peer and a block read from disk
// pass through identical verification arithmetic.  The length field is
// bounded by kMaxFramePayload; a peer claiming more is speaking a different
// protocol (or attacking) and the connection is torn down before any
// allocation happens.
//
// FrameDecoder is an incremental parser: feed it whatever recv() returned,
// poll complete frames out.  Malformed input (bad magic, oversized length,
// checksum mismatch) throws FrameError; the connection owner catches it and
// closes the socket.  TCP gives us a byte stream, not message boundaries, so
// the decoder must be — and is — correct for any split of the input.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <stdexcept>

#include "common/bytes.h"

namespace themis::p2p {

/// "TMP2" — Themis p2p.  First bytes on the wire of every frame.
inline constexpr std::uint32_t kFrameMagic = 0x32504d54;

/// Hard ceiling on one frame's payload.  Large enough for a sync batch of
/// full blocks, small enough that a hostile length prefix cannot balloon
/// memory (4 MiB).
inline constexpr std::uint32_t kMaxFramePayload = 4u << 20;

/// Fixed bytes around the payload: magic + type + length before, checksum after.
inline constexpr std::size_t kFrameOverhead = 16;

class FrameError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct Frame {
  std::uint32_t type = 0;
  Bytes payload;
};

/// One frame, ready to write to a socket.
Bytes encode_frame(std::uint32_t type, ByteSpan payload);

/// First 4 bytes of sha256d(payload), as a little-endian u32 (the BlockStore
/// record checksum, reused).
std::uint32_t frame_checksum(ByteSpan payload);

class FrameDecoder {
 public:
  /// Append raw bytes received from the socket.
  void feed(ByteSpan data);

  /// Pop the next complete frame, or nullopt if more bytes are needed.
  /// Throws FrameError on bad magic, oversized length or checksum mismatch;
  /// after a throw the decoder is poisoned and every further poll rethrows
  /// (the connection must be closed).
  std::optional<Frame> poll();

  /// Bytes buffered but not yet consumed as frames.
  std::size_t buffered() const { return buf_.size() - pos_; }

 private:
  void fail(const char* message);

  Bytes buf_;
  std::size_t pos_ = 0;  ///< consumed prefix of buf_
  bool poisoned_ = false;
};

}  // namespace themis::p2p
