// Connection fabric: listener, dialer with exponential backoff, liveness.
//
// PeerManager owns every live Peer and three kinds of threads:
//
//   * one accept thread parked in TcpListener::accept(),
//   * one reader thread per peer (recv -> FrameDecoder -> dispatch),
//   * one maintenance thread that dials configured addresses (exponential
//     backoff with jitter, capped), sends pings, kills peers that miss the
//     pong deadline, and reaps dead connections (joining their readers).
//
// The handshake (first frame in both directions, carrying network magic,
// protocol version and genesis hash) and ping/pong liveness are handled
// entirely inside the manager; the consensus layer above only ever sees
// validated post-handshake frames via its FrameHandler.
//
// Peer lifecycle:
//
//      dial/accept ──> connected ──handshake ok──> ready ──┐
//           │               │                              │ pong deadline
//           │               └──bad handshake──> dead <─────┘ missed, socket
//           └──dial failed: backoff, redial         │        error, EOF
//                                                   v
//                            reaped (reader joined, outbound slot redialed)
//
// Every callback fires on a manager-owned thread (reader or maintenance);
// the callee is responsible for its own locking.  Callbacks must be
// installed before start() and never change afterwards.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "p2p/peer.h"

namespace themis::p2p {

struct PeerManagerConfig {
  /// Port to listen on; 0 picks an ephemeral port (see listen_port()).
  std::uint16_t listen_port = 0;
  bool listen = true;
  /// Addresses to dial and keep dialed, as "host:port".
  std::vector<std::string> dial;

  /// Our handshake.  head_height is refreshed via the provider below at
  /// connection time when one is installed.
  HandshakeMsg handshake;

  int dial_timeout_ms = 2000;
  int send_timeout_ms = 10000;
  /// Ping a peer quiet for this long; kill it if no pong (or any other
  /// frame) arrives within pong_timeout_ms of the ping.
  int ping_interval_ms = 2000;
  int pong_timeout_ms = 10000;
  /// Redial backoff: initial * 2^attempts, capped, with +/-25% jitter.
  int backoff_initial_ms = 200;
  int backoff_max_ms = 5000;
  /// Maintenance loop tick (dial/ping/reap cadence).
  int tick_ms = 50;
  std::uint64_t jitter_seed = 1;
};

class PeerManager {
 public:
  using FrameHandler =
      std::function<void(Peer& peer, std::uint32_t type, ByteSpan payload)>;
  using PeerHandler = std::function<void(Peer& peer)>;
  /// Called at connect time to stamp the current chain height into our
  /// handshake (so the remote learns how far behind it is).
  using HeightProvider = std::function<std::uint64_t()>;

  explicit PeerManager(PeerManagerConfig config);
  ~PeerManager();

  PeerManager(const PeerManager&) = delete;
  PeerManager& operator=(const PeerManager&) = delete;

  void set_frame_handler(FrameHandler handler) { on_frame_ = std::move(handler); }
  void set_ready_handler(PeerHandler handler) { on_ready_ = std::move(handler); }
  void set_disconnect_handler(PeerHandler handler) {
    on_disconnect_ = std::move(handler);
  }
  void set_height_provider(HeightProvider provider) {
    height_provider_ = std::move(provider);
  }

  /// Bind the listener and start the accept + maintenance threads.  False if
  /// the configured port cannot be bound.
  bool start();
  void stop();

  /// Actual bound port (differs from config when it asked for 0).
  std::uint16_t listen_port() const { return listener_.port(); }

  /// Send to one peer by session id; false if it is gone or the write fails.
  bool send(std::uint64_t session_id, std::uint32_t type, ByteSpan payload);

  /// Send to every ready peer except `exclude_session` (0 = none).
  void broadcast(std::uint32_t type, ByteSpan payload,
                 std::uint64_t exclude_session = 0);

  /// Snapshot of the live, handshake-complete peers.
  std::vector<std::shared_ptr<Peer>> ready_peers() const;
  std::size_t ready_peer_count() const;

  /// Monotone transport counters (all atomics; safe to read any time).
  struct Stats {
    std::uint64_t connections_accepted = 0;
    std::uint64_t dials_attempted = 0;
    std::uint64_t dials_failed = 0;
    std::uint64_t reconnects = 0;  ///< redials after a prior successful session
    std::uint64_t handshakes_rejected = 0;
    std::uint64_t protocol_errors = 0;  ///< frame/decode errors that killed a peer
    std::uint64_t disconnects = 0;
    std::uint64_t pings_sent = 0;
    std::uint64_t pongs_received = 0;
    std::uint64_t ping_timeouts = 0;
    std::uint64_t bytes_in = 0;   ///< summed over all peers, dead or alive
    std::uint64_t bytes_out = 0;
  };
  Stats stats() const;

 private:
  struct DialSlot {
    std::string host;
    std::uint16_t port = 0;
    std::uint32_t attempts = 0;        ///< consecutive failures
    std::int64_t next_attempt_ms = 0;  ///< steady-clock deadline
    std::uint64_t session_id = 0;      ///< live peer for this slot (0 = none)
    bool ever_connected = false;
  };

  void accept_loop();
  void maintenance_loop();
  void reader_loop(const std::shared_ptr<Peer>& peer);
  /// Dispatch one frame; false ends the connection (protocol violation).
  bool handle_frame(Peer& peer, const Frame& frame);
  void adopt_socket(TcpSocket socket, bool outbound, int dial_index);
  void dial_due_slots(std::int64_t now_ms);
  void ping_and_reap(std::int64_t now_ms);
  Bytes our_handshake();

  PeerManagerConfig config_;
  FrameHandler on_frame_;
  PeerHandler on_ready_;
  PeerHandler on_disconnect_;
  HeightProvider height_provider_;

  TcpListener listener_;
  std::thread accept_thread_;
  std::thread maintenance_thread_;

  mutable std::mutex peers_mu_;
  std::unordered_map<std::uint64_t, std::shared_ptr<Peer>> peers_;
  std::uint64_t next_session_id_ = 1;
  std::vector<DialSlot> dial_slots_;  // maintenance thread only, after start()

  std::mutex cv_mu_;
  std::condition_variable cv_;
  std::atomic<bool> stopping_{false};
  bool started_ = false;

  Rng jitter_rng_;  // maintenance thread only

  // Counters behind Stats (see stats()).
  std::atomic<std::uint64_t> connections_accepted_{0};
  std::atomic<std::uint64_t> dials_attempted_{0};
  std::atomic<std::uint64_t> dials_failed_{0};
  std::atomic<std::uint64_t> reconnects_{0};
  std::atomic<std::uint64_t> handshakes_rejected_{0};
  std::atomic<std::uint64_t> protocol_errors_{0};
  std::atomic<std::uint64_t> disconnects_{0};
  std::atomic<std::uint64_t> pings_sent_{0};
  std::atomic<std::uint64_t> pongs_received_{0};
  std::atomic<std::uint64_t> ping_timeouts_{0};
  std::atomic<std::uint64_t> dead_bytes_in_{0};   ///< from reaped peers
  std::atomic<std::uint64_t> dead_bytes_out_{0};
};

/// Parse "host:port"; throws PreconditionError on malformed input.
std::pair<std::string, std::uint16_t> parse_host_port(const std::string& s);

}  // namespace themis::p2p
