#include "p2p/node.h"

#include <algorithm>
#include <chrono>

#include "common/check.h"
#include "consensus/miner.h"
#include "consensus/wire.h"
#include "crypto/merkle.h"
#include "crypto/schnorr.h"
#include "ledger/validation.h"
#include "obs/live/log.h"
#include "p2p/sync.h"
#include "state/authstate/snapshot.h"

namespace themis::p2p {

using consensus::RealMiner;
using ledger::Block;
using ledger::BlockHash;
using ledger::BlockPtr;
using obs::live::TxStage;

namespace {

/// Byte budget for one kP2pBlocks batch: half the frame ceiling, so the
/// one-block overshoot serve_range allows can never breach kMaxFramePayload.
constexpr std::size_t kSyncBatchBytes = kMaxFramePayload / 2;

/// How long a getdata stays "in flight" before we re-request the hash from
/// the next announcer (peer died or ignored us).
constexpr std::int64_t kRequestRetryMs = 5000;

/// Consecutive fully-duplicate sync batches tolerated per peer before we stop
/// re-requesting (Peer::sync_stalls).
constexpr std::uint32_t kMaxSyncStalls = 3;

std::int64_t steady_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string short_hex(const BlockHash& id) {
  return to_hex(ByteSpan(id.data(), 8));
}

/// Genesis funding: every consortium account starts with the same balance.
std::map<ledger::NodeId, UInt128> genesis_allocation(
    const P2pNodeConfig& config) {
  std::map<ledger::NodeId, UInt128> alloc;
  if (config.genesis_fund > 0) {
    for (std::size_t i = 0; i < config.n_nodes; ++i) {
      alloc[static_cast<ledger::NodeId>(i)] = config.genesis_fund;
    }
  }
  return alloc;
}

/// Admission replay filter: a transaction belongs in a candidate block only
/// if it applies cleanly on top of everything selected before it.
bool applies_cleanly(state::ScratchState& scratch,
                     const ledger::Transaction& tx) {
  const state::TxOutcome outcome = scratch.apply(tx);
  return outcome == state::TxOutcome::applied ||
         outcome == state::TxOutcome::data_only;
}

}  // namespace

std::string_view to_string(TxAdmit admit) {
  switch (admit) {
    case TxAdmit::accepted: return "accepted";
    case TxAdmit::duplicate: return "duplicate";
    case TxAdmit::known_confirmed: return "known_confirmed";
    case TxAdmit::invalid: return "invalid";
    case TxAdmit::bad_signature: return "bad_signature";
    case TxAdmit::unknown_sender: return "unknown_sender";
    case TxAdmit::stale_nonce: return "stale_nonce";
    case TxAdmit::nonce_gap: return "nonce_gap";
  }
  return "unknown";
}

P2pNode::P2pNode(P2pNodeConfig config,
                 std::shared_ptr<consensus::ForkChoiceRule> rule,
                 std::shared_ptr<consensus::DifficultyPolicy> policy)
    : config_(std::move(config)),
      rule_(rule != nullptr ? std::move(rule)
                            : std::make_shared<consensus::GhostRule>()),
      policy_(policy != nullptr
                  ? std::move(policy)
                  : std::make_shared<consensus::FixedDifficulty>(
                        config_.difficulty)),
      state_(genesis_allocation(config_)),
      pool_(config_.pool_capacity) {
  expects(config_.n_nodes >= 1, "p2p node set must be non-empty");
  expects(config_.id < config_.n_nodes, "node id out of range");
  if (config_.use_signatures) {
    keypair_ = crypto::Keypair::from_node_id(config_.id);
    registry_ = std::make_shared<consensus::KeyRegistry>();
    for (std::size_t i = 0; i < config_.n_nodes; ++i) {
      registry_->add(static_cast<ledger::NodeId>(i),
                     crypto::Keypair::from_node_id(i).public_key());
    }
  }
  tracker_.reset(tree_, *rule_, tree_.genesis_hash(), config_.finality_depth);

  // Checkpoint finality overlay: needs the Schnorr keys (votes are
  // signatures), so it engages only alongside use_signatures.
  if (config_.use_signatures && config_.checkpoint_interval > 0) {
    finality::TrackerConfig fc;
    fc.interval = config_.checkpoint_interval;
    fc.verify_signatures = true;
    ckpt_.emplace(fc, finality::ValidatorSet::deterministic(config_.n_nodes),
                  finality::make_backend(config_.finality_backend));
  }

  PeerManagerConfig pm;
  pm.listen_port = config_.listen_port;
  pm.listen = config_.listen;
  pm.dial = config_.peers;
  pm.handshake.genesis = tree_.genesis_hash();
  pm.handshake.node_id = config_.id;
  pm.handshake.agent = config_.agent;
  pm.dial_timeout_ms = config_.dial_timeout_ms;
  pm.ping_interval_ms = config_.ping_interval_ms;
  pm.pong_timeout_ms = config_.pong_timeout_ms;
  pm.backoff_initial_ms = config_.backoff_initial_ms;
  pm.backoff_max_ms = config_.backoff_max_ms;
  pm.jitter_seed = config_.rng_seed ^ (0x9e3779b97f4a7c15ULL + config_.id);
  peers_ = std::make_unique<PeerManager>(std::move(pm));
  peers_->set_height_provider([this] { return head_height(); });
  peers_->set_ready_handler([this](Peer& peer) { on_peer_ready(peer); });
  peers_->set_frame_handler(
      [this](Peer& peer, std::uint32_t type, ByteSpan payload) {
        on_peer_frame(peer, type, payload);
      });

  register_live_metrics();
  // Confirmation stamps ride the reconciler: it fires per newly-confirmed tx
  // under mu_, after the inclusion stamps of the same head change.
  reconciler_.set_confirm_hook([this](const ledger::TxId& id) {
    stage_tracker_.stamp(id, TxStage::confirmed);
  });
}

void P2pNode::register_live_metrics() {
  obs::live::Registry& r = live_registry_;
  live_.txs_submitted = &r.counter(
      "themis_tx_submitted_total", "Transaction admission attempts (RPC + wire relay).");
  live_.txs_accepted = &r.counter(
      "themis_tx_accepted_total", "Transactions admitted into the pool.");
  live_.txs_rejected = &r.counter(
      "themis_tx_rejected_total", "Transactions that failed an admission check.");
  live_.txs_duplicate = &r.counter(
      "themis_tx_duplicate_total", "Transactions already pending or confirmed.");
  live_.blocks_mined = &r.counter(
      "themis_blocks_mined_total", "Blocks mined by this node.");
  live_.blocks_received = &r.counter(
      "themis_blocks_received_total", "Full blocks received over the wire.");
  live_.blocks_rejected = &r.counter(
      "themis_blocks_rejected_total", "Blocks that failed validation.");
  live_.head_changes = &r.counter(
      "themis_head_changes_total", "Fork-choice head moves.");
  live_.reorgs = &r.counter(
      "themis_reorgs_total", "Head moves that abandoned a previous branch.");
  live_.ckpt_votes_sent = &r.counter(
      "themis_finality_votes_sent_total",
      "Checkpoint votes signed and broadcast by this node.");
  live_.ckpt_votes_received = &r.counter(
      "themis_finality_votes_received_total",
      "Checkpoint vote frames received from peers.");
  live_.ckpt_votes_accepted = &r.counter(
      "themis_finality_votes_accepted_total",
      "Checkpoint votes counted toward a checkpoint quorum.");
  live_.ckpt_votes_rejected = &r.counter(
      "themis_finality_votes_rejected_total",
      "Checkpoint votes rejected (equivocation, unknown voter, bad signature).");
  live_.ckpt_certs = &r.counter(
      "themis_finality_certificates_total",
      "Checkpoint quorums completed locally (certificates formed).");
  live_.admit_batch = &r.histogram(
      "themis_admit_batch_seconds",
      "Latency of one combining-leader admission batch (all four stages).");
  live_.block_submit = &r.histogram(
      "themis_block_submit_seconds",
      "Latency of block validate + insert + head update + pool reconcile.");
  pool_.set_live_counters(
      &r.counter("themis_pool_added_total", "TxPool inserts (all shards)."),
      &r.counter("themis_pool_evicted_total",
                 "TxPool capacity evictions (oldest first)."));
  // Instantaneous values the components already maintain atomically are read
  // at scrape time instead of being mirrored on the hot path.
  r.gauge_fn("themis_pool_depth", "Pending transactions in the TxPool.",
             [this] { return static_cast<double>(pool_.size()); });
  r.gauge_fn("themis_ready_peers", "Handshake-complete peer connections.",
             [this] { return static_cast<double>(peers_->ready_peer_count()); });
  r.gauge_fn("themis_head_height", "Height of the fork-choice head.",
             [this] { return static_cast<double>(head_height()); });
  r.gauge_fn("themis_uptime_seconds", "Seconds since the node started.",
             [this] { return uptime_seconds(); });
  r.gauge_fn("themis_finality_height",
             "Highest hard-finalized checkpoint height.", [this] {
               std::lock_guard<std::mutex> lock(mu_);
               return static_cast<double>(stats_.finalized_height);
             });
  r.gauge_fn("themis_finality_lag_blocks",
             "Blocks between the fork-choice head and the finalized height.",
             [this] {
               std::lock_guard<std::mutex> lock(mu_);
               const std::uint64_t head = tracker_.head_height();
               return static_cast<double>(
                   head > stats_.finalized_height
                       ? head - stats_.finalized_height
                       : 0);
             });
  r.gauge_fn("themis_finality_cert_votes",
             "Voters on the latest formed checkpoint certificate.", [this] {
               std::lock_guard<std::mutex> lock(mu_);
               if (!ckpt_.has_value()) return 0.0;
               const finality::CheckpointCertificate* cert =
                   ckpt_->latest_certificate();
               return cert == nullptr
                          ? 0.0
                          : static_cast<double>(cert->voters.size());
             });
  r.gauge_fn("themis_p2p_bytes_in", "Transport bytes received.",
             [this] { return static_cast<double>(peers_->stats().bytes_in); });
  r.gauge_fn("themis_p2p_bytes_out", "Transport bytes sent.",
             [this] { return static_cast<double>(peers_->stats().bytes_out); });
}

P2pNode::~P2pNode() { stop(); }

bool P2pNode::start() {
  expects(!started_, "p2p node already started");
  start_time_ = std::chrono::steady_clock::now();

  if (!config_.datadir.empty()) {
    std::filesystem::create_directories(config_.datadir);
    std::lock_guard<std::mutex> lock(mu_);
    // Restart in O(snapshot + suffix), not O(history): when a verified state
    // snapshot exists and its block is in the store, re-root the tree at the
    // snapshot block, seed the StateManager base with the restored state,
    // and replay only the records above the snapshot height.  Any snapshot
    // defect (checksum, version, root mismatch, missing block) falls back to
    // the full replay path.
    const auto snap =
        state::authstate::read_snapshot(config_.datadir / "state.snap");
    store_ =
        std::make_unique<ledger::BlockStore>(config_.datadir / "blocks.dat");
    bool rerooted = false;
    if (snap.has_value()) {
      if (auto root_block = store_->read_by_id(snap->block);
          root_block.has_value()) {
        tree_ = ledger::BlockTree(
            std::make_shared<const Block>(*std::move(root_block)));
        state_.reset_base(snap->state);
        last_snapshot_height_ = snap->height;
        stats_.snapshot_height = snap->height;
        stats_.restored_from_snapshot = true;
        rerooted = true;
        stats_.store_replayed = store_->replay_into(tree_, snap->height + 1);
        obs::live::log_info(
            "chain", "restored from snapshot",
            {{"height", snap->height},
             {"accounts",
              static_cast<std::uint64_t>(snap->state.accounts().size())},
             {"replayed", stats_.store_replayed}});
      } else {
        obs::live::log_warn("chain",
                            "snapshot block missing from store; full replay",
                            {{"height", snap->height}});
      }
    }
    if (!rerooted) stats_.store_replayed = store_->replay_into(tree_);
    if (stats_.store_replayed > 0 || rerooted) {
      tracker_.reset(tree_, *rule_, tree_.genesis_hash(),
                     config_.finality_depth);
      // The confirmed-tx index covers the replayed main chain, so tx_status
      // and duplicate suppression survive a restart.
      reconciler_.rebuild(tree_, tracker_.head());
    }
  }
  trace("node_start", {obs::Field::u64("node", config_.id),
                       obs::Field::u64("replayed", stats_.store_replayed),
                       obs::Field::u64("height", tracker_.head_height())});

  if (!peers_->start()) {
    obs::live::log_error("node", "listen failed",
                         {{"port", static_cast<std::uint64_t>(config_.listen_port)}});
    return false;
  }
  started_ = true;
  obs::live::log_info(
      "node", "started",
      {{"id", static_cast<std::uint64_t>(config_.id)},
       {"port", static_cast<std::uint64_t>(peers_->listen_port())},
       {"height", head_height()},
       {"replayed", chain_stats().store_replayed},
       {"mining", config_.mine}});

  mining_enabled_.store(config_.mine);
  miner_thread_ = std::thread([this] { mine_loop(); });
  return true;
}

void P2pNode::stop() {
  if (!started_) return;
  stopping_.store(true);
  miner_cv_.notify_all();
  if (miner_thread_.joinable()) miner_thread_.join();
  peers_->stop();
  started_ = false;
  obs::live::log_info("node", "stopped",
                      {{"id", static_cast<std::uint64_t>(config_.id)},
                       {"height", head_height()}});
}

void P2pNode::set_mining(bool enabled) {
  mining_enabled_.store(enabled);
  miner_cv_.notify_all();
}

std::int64_t P2pNode::wall_nanos() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - start_time_)
      .count();
}

void P2pNode::trace(std::string_view event,
                    std::initializer_list<obs::Field> fields) {
  if (obs_ == nullptr || !obs_->tracer.enabled()) return;
  std::lock_guard<std::mutex> lock(trace_mu_);
  obs_->tracer.emit(SimTime(wall_nanos()), event, fields);
}

// ---------------------------------------------------------------------------
// Transport callbacks
// ---------------------------------------------------------------------------

void P2pNode::on_peer_ready(Peer& peer) {
  trace("peer_ready", {obs::Field::u64("node", config_.id),
                       obs::Field::u64("remote", peer.remote().node_id),
                       obs::Field::boolean("outbound", peer.outbound())});
  obs::live::log_info(
      "p2p", "peer ready",
      {{"remote", static_cast<std::uint64_t>(peer.remote().node_id)},
       {"outbound", peer.outbound()},
       {"peers", static_cast<std::uint64_t>(peers_->ready_peer_count())}});
  // Always probe for a better chain: the response is empty if we are caught
  // up, and the locator round also covers a remote that lied about height.
  request_sync(peer);

  // Offer our pending transactions (bounded to one inv frame); the peer
  // fetches whatever it lacks, so a fresh node inherits the mempool the same
  // way it inherits the chain.
  InvMsg pool_inv;
  for (const ledger::TxId& id : pool_.ids(kMaxInvHashes)) {
    if (peer.mark_known(id)) pool_inv.hashes.push_back(id);
  }
  if (!pool_inv.hashes.empty()) {
    peer.send_frame(consensus::kP2pTxInv, pool_inv.encode());
  }

  // Offer our retained checkpoint votes the same way: a freshly connected
  // (or partition-healed) peer can be brought to quorum — and force-switched
  // onto the certified chain — from the retained window alone.
  std::vector<finality::CheckpointVote> retained;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (ckpt_.has_value()) retained = ckpt_->retained_votes();
  }
  for (const finality::CheckpointVote& vote : retained) {
    if (!peer.mark_known(vote.vote_id())) continue;
    if (!peer.send_frame(consensus::kP2pCkptVote,
                         CkptVoteMsg{vote}.encode())) {
      break;
    }
  }
}

void P2pNode::request_sync(Peer& peer) {
  GetBlocksMsg request;
  {
    std::lock_guard<std::mutex> lock(mu_);
    request.locator = build_locator(tree_, tracker_.head());
    ++stats_.sync_rounds;
  }
  request.max_blocks = static_cast<std::uint32_t>(kMaxSyncBlocks);
  peer.send_frame(consensus::kP2pGetBlocks, request.encode());
}

void P2pNode::on_peer_frame(Peer& peer, std::uint32_t type, ByteSpan payload) {
  switch (type) {
    case consensus::kP2pInv:
      handle_inv(peer, payload);
      return;
    case consensus::kP2pGetData:
      handle_getdata(peer, payload);
      return;
    case consensus::kP2pBlock:
      handle_block(peer, payload);
      return;
    case consensus::kP2pGetBlocks:
      handle_getblocks(peer, payload);
      return;
    case consensus::kP2pBlocks:
      handle_blocks(peer, payload);
      return;
    case consensus::kP2pTxInv:
      handle_tx_inv(peer, payload);
      return;
    case consensus::kP2pGetTxData:
      handle_get_txdata(peer, payload);
      return;
    case consensus::kP2pTx:
      handle_tx(peer, payload);
      return;
    case consensus::kP2pTxBatch:
      handle_tx_batch(peer, payload);
      return;
    case consensus::kP2pCkptVote:
      handle_ckpt_vote(peer, payload);
      return;
    default:
      // Unknown post-handshake frame: tolerated (forward compatibility), the
      // frame layer already verified its integrity.
      return;
  }
}

void P2pNode::handle_inv(Peer& peer, ByteSpan payload) {
  const InvMsg inv = InvMsg::decode(payload);
  InvMsg want;
  const std::int64_t now = steady_ms();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.invs_received += inv.hashes.size();
    for (const BlockHash& h : inv.hashes) {
      if (tree_.contains(h)) {
        ++stats_.invs_redundant;
        continue;
      }
      const auto it = requested_.find(h);
      if (it != requested_.end() && now - it->second < kRequestRetryMs) {
        continue;  // already being fetched from another announcer
      }
      requested_[h] = now;
      want.hashes.push_back(h);
    }
  }
  for (const BlockHash& h : inv.hashes) peer.mark_known(h);
  if (!want.hashes.empty()) {
    peer.send_frame(consensus::kP2pGetData, want.encode());
  }
}

void P2pNode::handle_getdata(Peer& peer, ByteSpan payload) {
  const InvMsg request = InvMsg::decode(payload);
  std::vector<std::pair<BlockHash, Bytes>> found;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const BlockHash& h : request.hashes) {
      if (!tree_.contains(h)) continue;  // pruned/unknown: silently skip
      found.emplace_back(h, tree_.block(h)->encode());
    }
  }
  for (const auto& [hash, encoding] : found) {
    peer.mark_known(hash);
    if (!peer.send_frame(consensus::kP2pBlock, encoding)) return;
  }
}

void P2pNode::handle_block(Peer& peer, ByteSpan payload) {
  // DecodeError from a malformed block propagates to the reader loop, which
  // treats it as a protocol error and closes the connection.
  auto block = std::make_shared<const Block>(Block::decode(payload));
  peer.mark_known(block->id());
  submit_block(std::move(block), peer.session_id());
}

void P2pNode::handle_getblocks(Peer& peer, ByteSpan payload) {
  const GetBlocksMsg request = GetBlocksMsg::decode(payload);
  BlocksMsg response;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const std::size_t max_blocks =
        std::min<std::size_t>(request.max_blocks, kMaxSyncBlocks);
    const auto range = serve_range(tree_, tracker_.head(), request.locator,
                                   max_blocks, kSyncBatchBytes);
    response.blocks.reserve(range.size());
    for (const BlockPtr& block : range) {
      response.blocks.push_back(block->encode());
    }
    ++stats_.sync_requests_served;
    stats_.sync_blocks_served += range.size();
  }
  trace("sync_served", {obs::Field::u64("node", config_.id),
                        obs::Field::u64("remote", peer.remote().node_id),
                        obs::Field::u64("blocks", response.blocks.size())});
  peer.send_frame(consensus::kP2pBlocks, response.encode());
}

void P2pNode::handle_blocks(Peer& peer, ByteSpan payload) {
  const BlocksMsg batch = BlocksMsg::decode(payload);
  if (batch.blocks.empty()) {
    peer.sync_stalls.store(0, std::memory_order_relaxed);
    return;  // caught up with this peer
  }
  bool grew = false;
  for (const Bytes& raw : batch.blocks) {
    auto block = std::make_shared<const Block>(Block::decode(raw));
    peer.mark_known(block->id());
    grew = submit_block(std::move(block), peer.session_id()) || grew;
  }
  // A non-empty batch means the peer may hold more; page until drained.  A
  // fully-duplicate batch usually means our locator raced with blocks that
  // arrived from another peer mid-round, so retry with a fresh locator — but
  // only a bounded number of times, so a peer that keeps serving blocks we
  // already have cannot trap us in a request loop.
  if (grew) {
    peer.sync_stalls.store(0, std::memory_order_relaxed);
    request_sync(peer);
  } else if (peer.sync_stalls.fetch_add(1, std::memory_order_relaxed) <
             kMaxSyncStalls) {
    request_sync(peer);
  }
}

// ---------------------------------------------------------------------------
// Transaction relay
// ---------------------------------------------------------------------------

void P2pNode::handle_tx_inv(Peer& peer, ByteSpan payload) {
  const InvMsg inv = InvMsg::decode(payload);  // tx ids are Hash32 like blocks
  InvMsg want;
  const std::int64_t now = steady_ms();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.tx_invs_received += inv.hashes.size();
    for (const ledger::TxId& id : inv.hashes) {
      if (pool_.contains(id) || reconciler_.block_of(id).has_value()) {
        ++stats_.tx_invs_redundant;
        continue;
      }
      const auto it = requested_tx_.find(id);
      if (it != requested_tx_.end() && now - it->second < kRequestRetryMs) {
        continue;  // already being fetched from another announcer
      }
      requested_tx_[id] = now;
      want.hashes.push_back(id);
    }
  }
  for (const ledger::TxId& id : inv.hashes) peer.mark_known(id);
  if (!want.hashes.empty()) {
    peer.send_frame(consensus::kP2pGetTxData, want.encode());
  }
}

void P2pNode::handle_get_txdata(Peer& peer, ByteSpan payload) {
  const InvMsg request = InvMsg::decode(payload);
  // The whole requested set travels in one kP2pTxBatch frame (split only at
  // the frame ceiling), so the peer can admit it as a single batch with one
  // batched signature verification.
  TxBatchMsg batch;
  std::size_t batch_bytes = 0;
  constexpr std::size_t kBatchByteBudget = kMaxFramePayload / 2;
  std::uint64_t served = 0;
  const auto flush_batch = [&]() -> bool {
    if (batch.txs.empty()) return true;
    const bool sent = peer.send_frame(consensus::kP2pTxBatch, batch.encode());
    if (sent) served += batch.txs.size();
    batch.txs.clear();
    batch_bytes = 0;
    return sent;
  };
  for (const ledger::TxId& id : request.hashes) {
    const auto stx = pool_.get(id);
    if (!stx.has_value()) continue;  // confirmed or evicted: silently skip
    peer.mark_known(id);
    Bytes encoded = stx->encode();
    if (batch.txs.size() >= kMaxBatchTxs ||
        batch_bytes + encoded.size() > kBatchByteBudget) {
      if (!flush_batch()) break;
    }
    batch_bytes += encoded.size();
    batch.txs.push_back(std::move(encoded));
  }
  flush_batch();
  if (served > 0) {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.txs_relayed += served;
  }
}

void P2pNode::handle_tx(Peer& peer, ByteSpan payload) {
  // DecodeError from a malformed transaction propagates to the reader loop,
  // which treats it as a protocol error and closes the connection (same
  // discipline as malformed blocks).
  const auto stx = ledger::SignedTransaction::decode(payload);
  const ledger::TxId id = stx.tx.id();
  peer.mark_known(id);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.txs_received;
    requested_tx_.erase(id);
  }
  accept_transaction(stx, peer.session_id());
}

void P2pNode::handle_tx_batch(Peer& peer, ByteSpan payload) {
  const TxBatchMsg batch = TxBatchMsg::decode(payload);
  if (batch.txs.empty()) return;
  std::vector<ledger::SignedTransaction> stxs;
  stxs.reserve(batch.txs.size());
  for (const Bytes& raw : batch.txs) {
    stxs.push_back(ledger::SignedTransaction::decode(raw));
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.txs_received += stxs.size();
    for (const ledger::SignedTransaction& stx : stxs) {
      requested_tx_.erase(stx.tx.id());
    }
  }
  std::vector<AdmitRequest> requests(stxs.size());
  std::vector<AdmitRequest*> pointers;
  pointers.reserve(stxs.size());
  for (std::size_t i = 0; i < stxs.size(); ++i) {
    peer.mark_known(stxs[i].tx.id());
    requests[i].stx = &stxs[i];
    requests[i].source_session = peer.session_id();
    pointers.push_back(&requests[i]);
  }
  enqueue_and_settle(pointers);
}

void P2pNode::handle_ckpt_vote(Peer& peer, ByteSpan payload) {
  // DecodeError from a malformed vote propagates to the reader loop, which
  // treats it as a protocol error and closes the connection (same discipline
  // as malformed blocks and transactions).
  const CkptVoteMsg msg = CkptVoteMsg::decode(payload);
  const finality::CheckpointVote& vote = msg.vote;
  peer.mark_known(vote.vote_id());

  bool relay = false;
  bool forced = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!ckpt_.has_value()) return;  // overlay disabled: tolerated frame
    ++stats_.ckpt_votes_received;
    live_.ckpt_votes_received->inc();
    const finality::VoteOutcome outcome = ckpt_->add_vote(vote);
    switch (outcome) {
      case finality::VoteOutcome::accepted:
      case finality::VoteOutcome::quorum:
        ++stats_.ckpt_votes_accepted;
        live_.ckpt_votes_accepted->inc();
        relay = true;
        break;
      case finality::VoteOutcome::duplicate:
      case finality::VoteOutcome::stale:
        break;  // benign gossip races, not protocol violations
      default:
        ++stats_.ckpt_votes_rejected;
        live_.ckpt_votes_rejected->inc();
        break;
    }
    if (outcome == finality::VoteOutcome::quorum) {
      ++stats_.ckpt_certs_formed;
      live_.ckpt_certs->inc();
      if (const finality::CheckpointCertificate* cert =
              ckpt_->certificate(vote.height)) {
        if (tree_.contains(cert->block)) {
          forced = apply_certificate_locked(*cert);
        } else {
          // Quorum outran the block (gossip reorders freely): park the
          // certificate and finalize when the block arrives.
          pending_certs_.push_back(*cert);
        }
      }
    }
  }
  // Accepted votes flood onward (suppressed per peer by vote_id), so a vote
  // reaches the whole consortium even across a sparse topology.
  if (relay) broadcast_votes({vote}, peer.session_id());
  if (forced) {
    chain_version_.fetch_add(1, std::memory_order_release);
    miner_cv_.notify_all();
    if (head_listener_) head_listener_(*this);
  }
}

TxAdmit P2pNode::submit_transaction(const ledger::SignedTransaction& stx) {
  return accept_transaction(stx, /*source_session=*/0);
}

std::vector<TxAdmit> P2pNode::submit_transactions(
    const std::vector<ledger::SignedTransaction>& stxs) {
  std::vector<AdmitRequest> requests(stxs.size());
  std::vector<AdmitRequest*> pointers;
  pointers.reserve(stxs.size());
  for (std::size_t i = 0; i < stxs.size(); ++i) {
    requests[i].stx = &stxs[i];
    pointers.push_back(&requests[i]);
  }
  if (!pointers.empty()) enqueue_and_settle(pointers);
  std::vector<TxAdmit> verdicts;
  verdicts.reserve(requests.size());
  for (const AdmitRequest& r : requests) verdicts.push_back(r.result);
  return verdicts;
}

TxAdmit P2pNode::accept_transaction(const ledger::SignedTransaction& stx,
                                    std::uint64_t source_session) {
  AdmitRequest req;
  req.stx = &stx;
  req.source_session = source_session;
  enqueue_and_settle({&req});
  return req.result;
}

void P2pNode::enqueue_and_settle(const std::vector<AdmitRequest*>& requests) {
  // Stamp before parking so the verify-stage latency includes combining-queue
  // wait (tx.id() is cached on the transaction; no hashing here).
  for (const AdmitRequest* r : requests) {
    stage_tracker_.stamp(r->stx->tx.id(), TxStage::submitted);
  }
  std::unique_lock<std::mutex> qlock(admit_mu_);
  for (AdmitRequest* r : requests) admit_queue_.push_back(r);
  if (admit_leader_active_) {
    // A leader is draining the queue; it will settle these requests too.
    admit_cv_.wait(qlock, [&] {
      return std::all_of(requests.begin(), requests.end(),
                         [](const AdmitRequest* r) { return r->done; });
    });
    return;
  }

  // Become the combining leader: drain the queue in batches until it is
  // empty.  The leader's own requests ride in the first batches; leadership
  // is released only under admit_mu_ so no enqueuer can slip between the
  // final empty-check and the release and wait forever.
  admit_leader_active_ = true;
  std::vector<AdmitRequest*> batch;
  while (!admit_queue_.empty()) {
    const std::size_t n =
        std::min(admit_queue_.size(), std::max<std::size_t>(config_.admit_batch_max, 1));
    batch.assign(admit_queue_.begin(),
                 admit_queue_.begin() + static_cast<std::ptrdiff_t>(n));
    admit_queue_.erase(admit_queue_.begin(),
                       admit_queue_.begin() + static_cast<std::ptrdiff_t>(n));
    qlock.unlock();
    process_admit_batch(batch);
    qlock.lock();
    for (AdmitRequest* r : batch) r->done = true;
    admit_cv_.notify_all();
  }
  admit_leader_active_ = false;
}

void P2pNode::process_admit_batch(const std::vector<AdmitRequest*>& batch) {
  obs::live::ScopedTimer admit_timer(live_.admit_batch);
  // Stage 1 — stateless checks, no locks: the key registry is immutable
  // after construction.
  for (AdmitRequest* r : batch) {
    const ledger::Transaction& tx = r->stx->tx;
    if (tx.sender() >= config_.n_nodes) {
      r->result = TxAdmit::unknown_sender;
    } else if (config_.use_signatures) {
      r->pub = registry_->lookup(tx.sender());
      if (!r->pub.has_value()) r->result = TxAdmit::unknown_sender;
    }
  }

  // Stage 2 — signature verification, still outside the consensus lock.
  // One random-linear-combination check covers the whole batch; if it fails,
  // fall back to per-item verification so only the forged items are charged.
  std::vector<AdmitRequest*> checking;
  std::vector<crypto::BatchVerifyItem> items;
  for (AdmitRequest* r : batch) {
    if (r->result != TxAdmit::accepted || !r->pub.has_value()) continue;
    checking.push_back(r);
    items.push_back({*r->pub, r->stx->tx.id(), r->stx->signature});
  }
  if (!checking.empty() && !crypto::verify_batch(items)) {
    for (std::size_t i = 0; i < checking.size(); ++i) {
      if (!crypto::verify(items[i].pub, items[i].msg, items[i].sig)) {
        checking[i]->result = TxAdmit::bad_signature;
      }
    }
  }
  for (const AdmitRequest* r : batch) {
    if (r->result == TxAdmit::accepted) {
      stage_tracker_.stamp(r->stx->tx.id(), TxStage::verified);
    }
  }

  // Stage 3 — stateful admission: one consensus-lock acquisition settles the
  // whole batch (confirmed-duplicate check, nonce window, pool insert,
  // stats).
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (AdmitRequest* r : batch) {
      ++stats_.txs_submitted;
      TxAdmit& admit = r->result;
      const ledger::Transaction& tx = r->stx->tx;
      if (admit == TxAdmit::accepted) {
        if (reconciler_.block_of(tx.id()).has_value()) {
          admit = TxAdmit::known_confirmed;
        } else {
          const std::uint64_t next = state_.state_at(tree_, tracker_.head())
                                         .account(tx.sender())
                                         .next_nonce;
          if (tx.nonce() < next) {
            admit = TxAdmit::stale_nonce;
          } else if (tx.nonce() >= next + config_.max_nonce_gap) {
            admit = TxAdmit::nonce_gap;
          } else if (!pool_.add(*r->stx)) {
            admit = TxAdmit::duplicate;
          } else {
            // Under mu_ on purpose: the miner also includes under mu_, so
            // the pooled stamp always precedes any inclusion stamp.
            stage_tracker_.stamp(tx.id(), TxStage::pooled);
          }
        }
      }
      live_.txs_submitted->inc();
      switch (admit) {
        case TxAdmit::accepted:
          ++stats_.txs_accepted;
          live_.txs_accepted->inc();
          break;
        case TxAdmit::duplicate:
        case TxAdmit::known_confirmed:
          ++stats_.txs_duplicate;
          live_.txs_duplicate->inc();
          break;
        default:
          ++stats_.txs_rejected;
          live_.txs_rejected->inc();
          break;
      }
    }
  }

  // Stage 4 — traces and one batched inventory announcement.
  std::vector<std::pair<ledger::TxId, std::uint64_t>> accepted;
  for (AdmitRequest* r : batch) {
    const ledger::Transaction& tx = r->stx->tx;
    if (r->result == TxAdmit::accepted) {
      trace("tx_accepted",
            {obs::Field::u64("node", config_.id),
             obs::Field::str("id", short_hex(tx.id())),
             obs::Field::u64("sender", tx.sender()),
             obs::Field::u64("nonce", tx.nonce()),
             obs::Field::boolean("rpc", r->source_session == 0)});
      accepted.emplace_back(tx.id(), r->source_session);
    } else {
      trace("tx_rejected",
            {obs::Field::u64("node", config_.id),
             obs::Field::str("id", short_hex(tx.id())),
             obs::Field::str("reason", std::string(to_string(r->result)))});
    }
  }
  if (!accepted.empty()) announce_txs(accepted);
}

void P2pNode::announce_txs(
    const std::vector<std::pair<ledger::TxId, std::uint64_t>>& accepted) {
  for (const auto& peer : peers_->ready_peers()) {
    InvMsg inv;
    for (const auto& [id, source_session] : accepted) {
      if (peer->session_id() == source_session) continue;
      if (!peer->mark_known(id)) continue;  // peer already has / was offered it
      inv.hashes.push_back(id);
    }
    if (!inv.hashes.empty()) {
      peer->send_frame(consensus::kP2pTxInv, inv.encode());
    }
  }
}

// ---------------------------------------------------------------------------
// Consensus core
// ---------------------------------------------------------------------------

bool P2pNode::validate_locked(const Block& block) {
  ledger::ValidationContext ctx;
  ctx.check_signature = config_.use_signatures;
  ctx.check_pow = true;
  ctx.check_body = true;
  if (registry_ != nullptr) {
    ctx.public_key = [this](ledger::NodeId id) { return registry_->lookup(id); };
  }
  ctx.expected_difficulty =
      [this](ledger::NodeId producer,
             const BlockHash& parent) -> std::optional<double> {
    if (!tree_.contains(parent)) return std::nullopt;
    return policy_->difficulty_for(tree_, parent, producer);
  };
  ctx.parent_height =
      [this](const BlockHash& parent) -> std::optional<std::uint64_t> {
    if (!tree_.contains(parent)) return std::nullopt;
    return tree_.height(parent);
  };
  if (ledger::validate_block(block, ctx) != ledger::BlockCheck::ok) {
    return false;
  }
  // Body replay against the parent state: every transaction must apply
  // cleanly in order.  A spent nonce or drained balance here is a
  // double-spend attempt smuggled into a block — reject the whole block.
  // The replay runs on a copy-on-write overlay of the parent snapshot, and
  // the touched-account delta is cached so materializing this block's state
  // later costs a few account writes instead of a second full replay.
  state::ScratchState scratch(state_.state_at(tree_, block.header().prev));
  for (const ledger::Transaction& tx : block.transactions()) {
    if (!applies_cleanly(scratch, tx)) return false;
  }
  state_.record_delta(block.id(), scratch.take_delta());
  return true;
}

bool P2pNode::submit_block(BlockPtr block, std::uint64_t source_session) {
  obs::live::ScopedTimer submit_timer(live_.block_submit);
  const BlockHash id = block->id();
  std::vector<BlockHash> announce;
  std::vector<finality::CheckpointVote> votes;
  bool head_changed = false;
  bool reorged = false;
  std::uint64_t new_height = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const BlockHash old_head = tracker_.head();
    if (source_session != 0) {
      ++stats_.blocks_received;
      live_.blocks_received->inc();
    }
    requested_.erase(id);
    if (tree_.contains(id)) {
      if (source_session != 0) ++stats_.blocks_duplicate;
      return false;
    }

    if (!tree_.contains(block->header().prev)) {
      // Parent unknown: buffer until it arrives (validation needs the parent
      // chain for the difficulty table), and start a locator round so the
      // gap gets filled even if the parent's announcement never reaches us.
      auto& waiting = pending_[block->header().prev];
      for (const BlockPtr& w : waiting) {
        if (w->id() == id) return false;
      }
      waiting.push_back(std::move(block));
      // Request outside the lock (below) to keep lock scope tight.
    } else {
      if (!validate_locked(*block)) {
        ++stats_.blocks_rejected;
        live_.blocks_rejected->inc();
        obs::live::log_warn("chain", "block rejected",
                            {{"hash", short_hex(id)},
                             {"height", block->header().height},
                             {"producer", static_cast<std::uint64_t>(
                                              block->header().producer)}});
        return false;
      }
      // Insert the block plus every pending descendant it unblocks — one
      // batch rooted at `id`, exactly what HeadTracker::on_insert wants.
      const BlockHash batch_parent = block->header().prev;
      std::size_t batch_size = 0;
      std::vector<BlockPtr> ready{std::move(block)};
      while (!ready.empty()) {
        BlockPtr cur = std::move(ready.back());
        ready.pop_back();
        const BlockHash cur_id = cur->id();
        // Inclusion stamps before the head update, so a confirm stamp from
        // the reconciler (same mu_ hold) is always later.
        for (const ledger::Transaction& tx : cur->transactions()) {
          stage_tracker_.stamp(tx.id(), TxStage::included);
        }
        if (store_ != nullptr) store_->append(*cur);
        tree_.insert(std::move(cur));
        announce.push_back(cur_id);
        ++batch_size;
        const auto it = pending_.find(cur_id);
        if (it != pending_.end()) {
          std::vector<BlockPtr> waiting = std::move(it->second);
          pending_.erase(it);
          for (BlockPtr& w : waiting) {
            if (tree_.contains(w->id())) continue;
            if (!validate_locked(*w)) {
              ++stats_.blocks_rejected;
              continue;
            }
            ready.push_back(std::move(w));
          }
        }
      }
      const auto update = tracker_.on_insert(tree_, *rule_, id, batch_parent,
                                             /*batch_is_leaf=*/batch_size == 1);
      head_changed = update.head_changed;
      reorged = update.reorg;
      if (update.below_finalized) ++stats_.reorgs_refused_finality;
      if (update.reorg) {
        ++stats_.reorgs;
        live_.reorgs->inc();
      }
      if (head_changed) live_.head_changes->inc();
      if (head_changed) {
        tree_.set_aggregate_floor(tracker_.anchor_height());
        new_height = tracker_.head_height();
        // Reconcile the pool with the new main chain: confirmed txs leave,
        // reorg-abandoned ones return, permanently stale ones are purged.
        const auto rec = reconciler_.on_head_change(
            tree_, old_head, tracker_.head(), pool_,
            state_.state_at(tree_, tracker_.head()));
        stats_.txs_confirmed += rec.confirmed;
        stats_.txs_returned += rec.returned;
        stats_.txs_purged += rec.purged;
        maybe_snapshot_locked();
      }
      // Finality overlay: an inserted block may be the one a parked quorum
      // certificate was waiting for, and a head advance may cross checkpoint
      // heights we have not voted on yet.
      if (ckpt_.has_value()) {
        if (drain_pending_certs_locked()) {
          // A parked certificate force-switched the head (the certified
          // branch had lost the local weight race until now).
          head_changed = true;
          reorged = true;
          new_height = tracker_.head_height();
        }
        if (head_changed) maybe_vote_locked(votes);
      }
    }
  }

  if (announce.empty()) {
    // Orphaned: chase the missing ancestry from whoever gave us the block.
    if (source_session != 0) {
      std::shared_ptr<Peer> source;
      for (const auto& peer : peers_->ready_peers()) {
        if (peer->session_id() == source_session) {
          source = peer;
          break;
        }
      }
      if (source != nullptr) request_sync(*source);
    }
    return false;
  }

  trace("block_accepted",
        {obs::Field::u64("node", config_.id),
         obs::Field::str("hash", short_hex(id)),
         obs::Field::u64("batch", announce.size()),
         obs::Field::boolean("mined", source_session == 0),
         obs::Field::boolean("reorg", reorged)});

  if (head_changed) {
    chain_version_.fetch_add(1, std::memory_order_release);
    miner_cv_.notify_all();
    trace("head_changed", {obs::Field::u64("node", config_.id),
                           obs::Field::u64("height", new_height),
                           obs::Field::boolean("reorg", reorged)});
    if (reorged) {
      obs::live::log_info("chain", "reorg",
                          {{"height", new_height}, {"hash", short_hex(id)}});
    } else {
      obs::live::log_debug("chain", "head changed",
                           {{"height", new_height},
                            {"hash", short_hex(id)},
                            {"mined", source_session == 0}});
    }
    if (head_listener_) head_listener_(*this);
  }

  // Our own checkpoint votes go to everyone (including the block's source).
  broadcast_votes(votes, /*exclude_session=*/0);

  // Inventory-based announcement: one inv per peer, restricted to hashes the
  // peer is not already known to have (the duplicate-suppression accounting
  // net/gossip models with its per-node seen sets).
  for (const auto& peer : peers_->ready_peers()) {
    if (peer->session_id() == source_session) continue;
    InvMsg inv;
    for (const BlockHash& h : announce) {
      if (peer->mark_known(h)) inv.hashes.push_back(h);
    }
    if (!inv.hashes.empty()) {
      peer->send_frame(consensus::kP2pInv, inv.encode());
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Checkpoint finality overlay
// ---------------------------------------------------------------------------

void P2pNode::broadcast_votes(
    const std::vector<finality::CheckpointVote>& votes,
    std::uint64_t exclude_session) {
  if (votes.empty()) return;
  for (const auto& peer : peers_->ready_peers()) {
    if (peer->session_id() == exclude_session) continue;
    for (const finality::CheckpointVote& vote : votes) {
      if (!peer->mark_known(vote.vote_id())) continue;
      if (!peer->send_frame(consensus::kP2pCkptVote,
                            CkptVoteMsg{vote}.encode())) {
        break;
      }
    }
  }
}

void P2pNode::maybe_vote_locked(std::vector<finality::CheckpointVote>& out) {
  if (!ckpt_.has_value() || !keypair_.has_value()) return;
  const std::uint64_t interval = ckpt_->interval();
  // Highest checkpoint height covered by the preferred path.
  const std::uint64_t top = (tracker_.head_height() / interval) * interval;
  for (std::uint64_t h = (last_voted_height_ / interval + 1) * interval;
       h <= top; h += interval) {
    last_voted_height_ = h;  // one vote per height, ever: never equivocate
    if (h <= ckpt_->finalized_height()) continue;
    const BlockHash* block = tracker_.path_block_at(h);
    if (block == nullptr) continue;  // below the anchor: unreachable
    const finality::CheckpointVote vote =
        ckpt_->make_vote(h, *block, *keypair_, config_.id);
    const finality::VoteOutcome outcome = ckpt_->add_vote(vote);
    if (outcome != finality::VoteOutcome::accepted &&
        outcome != finality::VoteOutcome::quorum) {
      continue;
    }
    ++stats_.ckpt_votes_sent;
    live_.ckpt_votes_sent->inc();
    out.push_back(vote);
    if (outcome == finality::VoteOutcome::quorum) {
      ++stats_.ckpt_certs_formed;
      live_.ckpt_certs->inc();
      // Our vote is for a block on the preferred path, so applying the
      // certificate can never force-switch the head here.
      if (const finality::CheckpointCertificate* cert = ckpt_->certificate(h)) {
        apply_certificate_locked(*cert);
      }
    }
  }
}

bool P2pNode::apply_certificate_locked(
    const finality::CheckpointCertificate& cert) {
  // Defensive: a certificate whose claimed height disagrees with the tree
  // would poison the floors below — refuse it (>2/3 honest weight means a
  // formed certificate is consistent; this guards the invariant anyway).
  if (!tree_.contains(cert.block) || tree_.height(cert.block) != cert.height) {
    obs::live::log_warn("finality", "certificate inconsistent with tree",
                        {{"height", cert.height},
                         {"hash", short_hex(cert.block)}});
    return false;
  }
  if (cert.height <= stats_.finalized_height) return false;  // monotone

  const BlockHash old_head = tracker_.head();
  const bool head_changed = tracker_.set_finalized(tree_, *rule_, cert.block);
  stats_.finalized_height = cert.height;
  // Every downstream floor keys off the hard anchor from here on: state pins,
  // pool confirmation immutability, tree aggregate pruning, snapshots.
  state_.set_finalized_floor(cert.height);
  reconciler_.set_finalized(cert.height, cert.block);
  tree_.set_aggregate_floor(tracker_.anchor_height());
  if (head_changed) {
    // Hard finality outranked the local weight race: reconcile the pool with
    // the certified chain exactly as a reorg would.
    ++stats_.reorgs;
    live_.reorgs->inc();
    live_.head_changes->inc();
    const auto rec = reconciler_.on_head_change(
        tree_, old_head, tracker_.head(), pool_,
        state_.state_at(tree_, tracker_.head()));
    stats_.txs_confirmed += rec.confirmed;
    stats_.txs_returned += rec.returned;
    stats_.txs_purged += rec.purged;
  }
  maybe_snapshot_locked();
  obs::live::log_info(
      "finality", "checkpoint finalized",
      {{"height", cert.height},
       {"hash", short_hex(cert.block)},
       {"votes", static_cast<std::uint64_t>(cert.voters.size())},
       {"forced", head_changed}});
  trace("checkpoint_finalized",
        {obs::Field::u64("node", config_.id),
         obs::Field::u64("height", cert.height),
         obs::Field::u64("votes", cert.voters.size()),
         obs::Field::boolean("forced", head_changed)});
  return head_changed;
}

bool P2pNode::drain_pending_certs_locked() {
  bool forced = false;
  auto it = pending_certs_.begin();
  while (it != pending_certs_.end()) {
    if (it->height <= stats_.finalized_height) {
      it = pending_certs_.erase(it);  // superseded by a later checkpoint
    } else if (tree_.contains(it->block)) {
      forced = apply_certificate_locked(*it) || forced;
      it = pending_certs_.erase(it);
    } else {
      ++it;
    }
  }
  return forced;
}

// ---------------------------------------------------------------------------
// Miner
// ---------------------------------------------------------------------------

void P2pNode::mine_loop() {
  Rng rng(config_.rng_seed * 0x2545f4914f6cdd1dULL + config_.id + 1);
  while (!stopping_.load()) {
    if (!mining_enabled_.load()) {
      std::unique_lock<std::mutex> lock(miner_mu_);
      miner_cv_.wait_for(lock, std::chrono::milliseconds(200));
      continue;
    }

    // Snapshot the mining target under the consensus lock.
    ledger::BlockHeader header;
    std::vector<ledger::Transaction> body;
    std::uint64_t version;
    {
      std::lock_guard<std::mutex> lock(mu_);
      const BlockHash parent = tracker_.head();
      header.height = tree_.height(parent) + 1;
      header.prev = parent;
      header.producer = config_.id;
      header.epoch = policy_->epoch_for(tree_, parent);
      header.difficulty = policy_->difficulty_for(tree_, parent, config_.id);
      // Fill the candidate body from the pool (§III: "pick transactions from
      // the transaction pool"), replaying each candidate against a
      // copy-on-write overlay of the parent state so the block carries no
      // double-spend and a sender's queued nonce chain fits into a single
      // block.
      state::ScratchState scratch(state_.state_at(tree_, parent));
      body = pool_.select(config_.max_block_txs,
                          [&scratch](const ledger::Transaction& tx) {
                            return applies_cleanly(scratch, tx);
                          });
      std::vector<ledger::TxId> tx_ids;
      tx_ids.reserve(body.size());
      for (const ledger::Transaction& tx : body) tx_ids.push_back(tx.id());
      header.tx_count = static_cast<std::uint32_t>(body.size());
      header.merkle_root = crypto::merkle_root(tx_ids);
      version = chain_version_.load(std::memory_order_acquire);
    }
    header.timestamp_nanos = std::chrono::duration_cast<std::chrono::nanoseconds>(
                                 std::chrono::system_clock::now().time_since_epoch())
                                 .count();
    std::uint64_t nonce = rng.next_u64();

    // Grind in chunks; between chunks re-check for head changes (memoryless:
    // restarting the search loses nothing statistically) and stop requests.
    while (!stopping_.load() && mining_enabled_.load() &&
           chain_version_.load(std::memory_order_acquire) == version) {
      const auto solved = RealMiner::mine(header, nonce, config_.mine_chunk);
      if (!solved.has_value()) {
        nonce += config_.mine_chunk;
        if (nonce > UINT64_MAX - config_.mine_chunk) nonce = rng.next_u64();
        continue;
      }
      crypto::Signature signature{};
      if (keypair_.has_value()) signature = keypair_->sign(solved->hash());
      auto block =
          std::make_shared<const Block>(*solved, signature, std::move(body));
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.blocks_produced;
      }
      live_.blocks_mined->inc();
      obs::live::log_debug(
          "miner", "block mined",
          {{"hash", short_hex(block->id())},
           {"height", solved->height},
           {"txs", static_cast<std::uint64_t>(block->transactions().size())}});
      trace("block_mined", {obs::Field::u64("node", config_.id),
                            obs::Field::str("hash", short_hex(block->id())),
                            obs::Field::u64("height", solved->height),
                            obs::Field::u64("txs", block->transactions().size())});
      submit_block(std::move(block), /*source_session=*/0);
      break;  // resample against the (possibly new) head
    }
  }
}

// ---------------------------------------------------------------------------
// Observers
// ---------------------------------------------------------------------------

BlockHash P2pNode::head() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tracker_.head();
}

std::uint64_t P2pNode::head_height() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tracker_.head_height();
}

std::uint64_t P2pNode::tree_blocks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tree_.subtree_size(tree_.genesis_hash());
}

std::uint64_t P2pNode::store_blocks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return store_ != nullptr ? store_->size() : 0;
}

bool P2pNode::contains(const BlockHash& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return tree_.contains(id);
}

P2pNode::ChainStats P2pNode::chain_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

double P2pNode::uptime_seconds() const {
  if (!started_.load(std::memory_order_relaxed)) return 0.0;
  return static_cast<double>(wall_nanos()) / 1e9;
}

bool P2pNode::ready() const {
  return started_.load(std::memory_order_relaxed) &&
         (config_.peers.empty() || peers_->ready_peer_count() > 0);
}

double P2pNode::redundant_announce_ratio() const {
  const ChainStats s = chain_stats();
  return s.invs_received == 0
             ? 0.0
             : static_cast<double>(s.invs_redundant) /
                   static_cast<double>(s.invs_received);
}

P2pNode::TxStatusInfo P2pNode::tx_status(const ledger::TxId& id) const {
  TxStatusInfo info;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto block_hash = reconciler_.block_of(id);
    if (block_hash.has_value()) {
      info.state = TxStatusInfo::State::confirmed;
      info.block = *block_hash;
      info.block_height = tree_.height(*block_hash);
      const std::uint64_t head_height = tracker_.head_height();
      info.confirmations = head_height >= info.block_height
                               ? head_height - info.block_height + 1
                               : 0;
      for (const ledger::Transaction& tx :
           tree_.block(*block_hash)->transactions()) {
        if (tx.id() == id) {
          info.tx = tx;
          break;
        }
      }
      return info;
    }
  }
  const auto pending = pool_.get(id);
  if (pending.has_value()) {
    info.state = TxStatusInfo::State::pending;
    info.tx = pending->tx;
  }
  return info;
}

P2pNode::AccountInfo P2pNode::account_info(ledger::NodeId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const state::Account& account =
      state_.state_at(tree_, tracker_.head()).account(id);
  return AccountInfo{account.balance, account.next_nonce};
}

const Hash32& P2pNode::ensure_root_locked() const {
  const ledger::BlockHash head = tracker_.head();
  if (root_valid_ && root_head_ == head) return root_cache_.root();
  const state::LedgerState& state = state_.state_at(tree_, head);
  // Incremental path: if the previous root head is an ancestor within a
  // short parent walk and every block in between recorded a validation
  // delta, only the pages those deltas touched need re-hashing.  A reorg
  // (old head not an ancestor) or a missing delta falls back to a full
  // rebuild, so the cache can never serve a stale root.
  static constexpr std::size_t kMaxIncrementalWalk = 64;
  bool incremental = false;
  std::vector<ledger::NodeId> touched;
  if (root_valid_) {
    ledger::BlockHash cursor = head;
    for (std::size_t steps = 0; steps <= kMaxIncrementalWalk; ++steps) {
      if (cursor == root_head_) {
        incremental = true;
        break;
      }
      const state::StateDelta* delta = state_.delta(cursor);
      if (delta == nullptr) break;
      for (const auto& [id, account] : delta->accounts) touched.push_back(id);
      const auto parent = tree_.parent(cursor);
      if (!parent.has_value()) break;
      cursor = *parent;
    }
  }
  if (incremental) {
    root_cache_.update(state, touched);
  } else {
    root_cache_.rebuild(state);
  }
  root_head_ = head;
  root_valid_ = true;
  return root_cache_.root();
}

Hash32 P2pNode::head_state_root() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ensure_root_locked();
}

UInt128 P2pNode::total_supply() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_.state_at(tree_, tracker_.head()).total_supply();
}

P2pNode::BalanceProof P2pNode::balance_proof(ledger::NodeId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  BalanceProof result;
  result.head = tracker_.head();
  result.height = tracker_.head_height();
  result.state_root = ensure_root_locked();
  const state::LedgerState& state = state_.state_at(tree_, result.head);
  result.account = state.account(id);
  // The root cache already holds every page hash for the head, so proof
  // construction only encodes the one target page instead of re-hashing the
  // whole state (prove_account's O(accounts) path).
  const std::uint32_t page = state::authstate::page_of(id);
  const std::uint32_t page_count = root_cache_.page_count();
  result.proof.page = page;
  result.proof.page_count = page_count;
  if (page < page_count) {
    result.available = true;
    result.proof.page_bytes = state::authstate::encode_page(state, page);
    result.proof.steps = crypto::merkle_prove(root_cache_.page_hashes(), page);
  }
  return result;
}

void P2pNode::maybe_snapshot_locked() {
  if (config_.snapshot_interval == 0 || config_.datadir.empty()) return;
  const std::uint64_t anchor_height = tracker_.anchor_height();
  if (anchor_height < last_snapshot_height_ + config_.snapshot_interval) {
    return;
  }
  const ledger::BlockHash anchor = tracker_.anchor();
  state::authstate::Snapshot snap;
  snap.height = anchor_height;
  snap.block = anchor;
  snap.state = state_.state_at(tree_, anchor);
  if (!state::authstate::write_snapshot(config_.datadir / "state.snap",
                                        snap)) {
    obs::live::log_warn("chain", "snapshot write failed",
                        {{"height", anchor_height}});
    return;
  }
  // Pin the anchor state so the next snapshot replays only the interval
  // since this one, not the whole chain from the tree root.
  state_.pin_anchor(tree_, anchor);
  last_snapshot_height_ = anchor_height;
  stats_.snapshot_height = anchor_height;
  ++stats_.snapshots_written;
  obs::live::log_info(
      "chain", "snapshot written",
      {{"height", anchor_height},
       {"accounts", static_cast<std::uint64_t>(snap.state.accounts().size())}});
  if (config_.prune && store_ != nullptr) {
    const std::size_t removed = store_->prune_below(anchor_height);
    stats_.blocks_pruned += removed;
    if (removed > 0) {
      obs::live::log_info("chain", "pruned block store",
                          {{"below", anchor_height},
                           {"removed", static_cast<std::uint64_t>(removed)}});
    }
  }
}

std::optional<P2pNode::BlockInfo> P2pNode::block_info(
    const ledger::BlockHash& hash) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!tree_.contains(hash)) return std::nullopt;
  BlockInfo info;
  info.block = tree_.block(hash);
  info.on_main_chain = tree_.is_ancestor(hash, tracker_.head());
  if (info.on_main_chain) {
    info.confirmations = tracker_.head_height() - tree_.height(hash) + 1;
  }
  return info;
}

std::optional<P2pNode::BlockInfo> P2pNode::block_info_at(
    std::uint64_t height) const {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t head_height = tracker_.head_height();
  if (height > head_height) return std::nullopt;
  BlockHash cursor = tracker_.head();
  for (std::uint64_t h = head_height; h > height; --h) {
    const auto parent = tree_.parent(cursor);
    if (!parent.has_value()) return std::nullopt;
    cursor = *parent;
  }
  BlockInfo info;
  info.block = tree_.block(cursor);
  info.on_main_chain = true;
  info.confirmations = head_height - height + 1;
  return info;
}

P2pNode::FinalityInfo P2pNode::finality_info() const {
  std::lock_guard<std::mutex> lock(mu_);
  FinalityInfo info;
  info.enabled = ckpt_.has_value();
  info.head_height = tracker_.head_height();
  if (!ckpt_.has_value()) return info;
  info.interval = ckpt_->interval();
  info.finalized_height = stats_.finalized_height;
  info.lag = info.head_height > info.finalized_height
                 ? info.head_height - info.finalized_height
                 : 0;
  if (const finality::CheckpointCertificate* cert =
          ckpt_->certificate(stats_.finalized_height)) {
    info.finalized_block = cert->block;
    info.latest_votes = cert->voters.size();
  }
  return info;
}

std::optional<finality::CheckpointCertificate> P2pNode::checkpoint_certificate(
    std::uint64_t height) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!ckpt_.has_value()) return std::nullopt;
  const finality::CheckpointCertificate* cert = ckpt_->certificate(height);
  if (cert == nullptr) return std::nullopt;
  return *cert;
}

std::uint64_t P2pNode::next_nonce_hint(ledger::NodeId sender) const {
  std::uint64_t state_next = 1;
  {
    std::lock_guard<std::mutex> lock(mu_);
    state_next =
        state_.state_at(tree_, tracker_.head()).account(sender).next_nonce;
  }
  return pool_.next_nonce_hint(sender, state_next);
}

void P2pNode::fill_observability() {
  if (obs_ == nullptr) return;
  const ChainStats chain = chain_stats();
  const PeerManager::Stats transport = peers_->stats();
  obs::Counters& counters = obs_->counters;

  counters.counter("chain.height") = head_height();
  counters.counter("chain.tree_blocks") = tree_blocks();
  counters.counter("chain.store_blocks") = store_blocks();
  counters.counter("chain.store_replayed") = chain.store_replayed;
  counters.counter("consensus.blocks_produced") = chain.blocks_produced;
  counters.counter("consensus.blocks_rejected") = chain.blocks_rejected;
  counters.counter("consensus.reorgs") = chain.reorgs;

  counters.counter("finality.height") = chain.finalized_height;
  counters.counter("finality.votes_sent") = chain.ckpt_votes_sent;
  counters.counter("finality.votes_received") = chain.ckpt_votes_received;
  counters.counter("finality.votes_accepted") = chain.ckpt_votes_accepted;
  counters.counter("finality.votes_rejected") = chain.ckpt_votes_rejected;
  counters.counter("finality.certificates") = chain.ckpt_certs_formed;
  counters.counter("finality.reorgs_refused") = chain.reorgs_refused_finality;

  counters.counter("p2p.bytes_in") = transport.bytes_in;
  counters.counter("p2p.bytes_out") = transport.bytes_out;
  counters.counter("p2p.connections_accepted") = transport.connections_accepted;
  counters.counter("p2p.dials_attempted") = transport.dials_attempted;
  counters.counter("p2p.dials_failed") = transport.dials_failed;
  counters.counter("p2p.reconnects") = transport.reconnects;
  counters.counter("p2p.handshakes_rejected") = transport.handshakes_rejected;
  counters.counter("p2p.protocol_errors") = transport.protocol_errors;
  counters.counter("p2p.disconnects") = transport.disconnects;
  counters.counter("p2p.pings_sent") = transport.pings_sent;
  counters.counter("p2p.pongs_received") = transport.pongs_received;
  counters.counter("p2p.ping_timeouts") = transport.ping_timeouts;

  counters.counter("p2p.invs_received") = chain.invs_received;
  counters.counter("p2p.invs_redundant") = chain.invs_redundant;
  counters.counter("p2p.blocks_received") = chain.blocks_received;
  counters.counter("p2p.blocks_duplicate") = chain.blocks_duplicate;
  counters.counter("p2p.sync_requests_served") = chain.sync_requests_served;
  counters.counter("p2p.sync_blocks_served") = chain.sync_blocks_served;
  counters.counter("p2p.sync_rounds") = chain.sync_rounds;
  obs_->counters.series("p2p.redundant_announce_ratio")
      .push_back(redundant_announce_ratio());

  counters.counter("tx.submitted") = chain.txs_submitted;
  counters.counter("tx.accepted") = chain.txs_accepted;
  counters.counter("tx.rejected") = chain.txs_rejected;
  counters.counter("tx.duplicate") = chain.txs_duplicate;
  counters.counter("tx.relayed") = chain.txs_relayed;
  counters.counter("tx.received") = chain.txs_received;
  counters.counter("tx.invs_received") = chain.tx_invs_received;
  counters.counter("tx.invs_redundant") = chain.tx_invs_redundant;
  counters.counter("tx.confirmed") = chain.txs_confirmed;
  counters.counter("tx.returned") = chain.txs_returned;
  counters.counter("tx.purged") = chain.txs_purged;
  counters.counter("tx.pool_depth") = pool_.size();
  counters.series("tx.pool_depth").push_back(static_cast<double>(pool_.size()));

  // Per-peer traffic, attributed to the remote's consensus node id.
  for (const auto& peer : peers_->ready_peers()) {
    obs::LinkStat& link = counters.link(
        static_cast<std::uint32_t>(config_.id),
        static_cast<std::uint32_t>(peer->remote().node_id));
    link.messages = peer->frames_in.load(std::memory_order_relaxed) +
                    peer->frames_out.load(std::memory_order_relaxed);
    link.bytes = peer->bytes_in.load(std::memory_order_relaxed) +
                 peer->bytes_out.load(std::memory_order_relaxed);
  }
}

}  // namespace themis::p2p
