// A consensus node on a real TCP network.
//
// P2pNode runs the same consensus stack as the simulated PowNode — BlockTree
// + HeadTracker + ForkChoiceRule + DifficultyPolicy + the §III validation
// pipeline — but over the socket transport (PeerManager) instead of the
// discrete-event GossipNetwork, with real proof-of-work (RealMiner grinding
// double-SHA-256 nonces on a dedicated thread) and a durable BlockStore
// under the datadir so a restarted node replays its chain and re-syncs to
// the network head.
//
// Block dissemination is announcement-based: a new block is advertised to
// every ready peer as a kP2pInv hash; peers that lack it answer kP2pGetData
// and receive the kP2pBlock.  The per-peer known-inventory set suppresses
// duplicate announcements the way net/gossip's seen-set drops duplicate
// pushes — the redundant-announce ratio is the same observable, measured on
// a real wire.  Catch-up uses the locator protocol in p2p/sync.h.
//
// Threading: the consensus state (tree, tracker, store, orphan buffer) lives
// behind one mutex, taken by reader threads delivering frames, by the miner
// thread submitting solved blocks, and by observer queries.  The miner is
// cancelled edge-triggered: every head change bumps an atomic chain version,
// and the grinder re-checks it between nonce chunks (the real-clock analogue
// of the simulator's memoryless mining restart).
//
// Transaction pipeline (the client-facing half, §III "pick transactions from
// the transaction pool"): submit_transaction() — called by the RPC gateway
// and by the kP2pTx handler — runs the admission checks (canonical form,
// consortium signature, nonce against the head state), inserts into the
// thread-safe TxPool, and announces the id to every ready peer as a
// kP2pTxInv; peers that lack it answer kP2pGetTxData and receive the
// kP2pTx — the same inventory-based duplicate suppression blocks use, over
// the same per-peer known-set.  The miner fills candidate blocks from
// TxPool::select() filtered by replay against a scratch copy of the parent
// state; block validation replays bodies the same way (rejecting
// double-spends); and every head change runs the PoolReconciler so confirmed
// transactions leave the pool and reorg-abandoned ones return to it.
// Lock order: the consensus mutex (mu_) before the pool's internal mutex,
// or the pool's alone — never the reverse.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <filesystem>
#include <functional>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "consensus/difficulty.h"
#include "consensus/forkchoice.h"
#include "consensus/head_tracker.h"
#include "consensus/node.h"  // KeyRegistry
#include "finality/tracker.h"
#include "ledger/block_store.h"
#include "ledger/blocktree.h"
#include "ledger/txpool.h"
#include "obs/live/registry.h"
#include "obs/live/stage_tracker.h"
#include "obs/observability.h"
#include "p2p/peer_manager.h"
#include "state/authstate/merkle_state.h"
#include "state/ledger_state.h"
#include "state/pool_reconciler.h"

namespace themis::p2p {

/// Outcome of transaction admission (RPC submit or p2p relay).
enum class TxAdmit {
  accepted,         ///< entered the pool and was announced to peers
  duplicate,        ///< already pending in the pool
  known_confirmed,  ///< already confirmed on the main chain
  invalid,          ///< malformed canonical encoding
  bad_signature,    ///< Schnorr admission signature failed to verify
  unknown_sender,   ///< sender id outside the consortium registry
  stale_nonce,      ///< nonce already consumed at the current head
  nonce_gap,        ///< nonce too far beyond the sender's next expected
};

std::string_view to_string(TxAdmit admit);

struct P2pNodeConfig {
  ledger::NodeId id = 0;
  std::size_t n_nodes = 1;

  /// Transport: where to listen (0 = ephemeral) and whom to dial.
  std::uint16_t listen_port = 0;
  bool listen = true;
  std::vector<std::string> peers;

  /// Directory for durable state (blocks.dat); empty = memory only.
  std::filesystem::path datadir;

  /// Write a state snapshot (datadir/state.snap) whenever the finalized
  /// anchor has advanced this many blocks past the previous snapshot
  /// (0 = never).  A valid snapshot found at start() is always restored,
  /// re-rooting the tree at the snapshot block so restart cost is
  /// O(snapshot + blocks since) instead of O(history).
  std::uint64_t snapshot_interval = 0;
  /// After each snapshot, drop block-store records below the snapshot
  /// height.  A pruned node keeps serving sync for everything above its
  /// snapshot; fresh nodes bootstrapping from genesis need an unpruned peer.
  bool prune = false;

  /// Real-PoW difficulty: one hash succeeds with probability 1/difficulty,
  /// so expected hashes per block = difficulty (T_0 = T_max convention).
  double difficulty = 20000.0;
  bool mine = true;
  /// Nonces ground between chain-version checks; smaller = faster mining
  /// cancellation, larger = less overhead.
  std::uint64_t mine_chunk = 2048;

  bool use_signatures = true;
  std::uint64_t finality_depth = 16;

  /// Checkpoint finality overlay (src/finality): every `checkpoint_interval`
  /// heights the node signs and gossips a checkpoint vote; >2/3 of the
  /// consortium weight hard-finalizes the prefix.  0 disables the overlay.
  /// Requires use_signatures (votes are Schnorr signatures); with signatures
  /// off the overlay stays off regardless of the interval.
  std::uint64_t checkpoint_interval = 16;
  /// Aggregation backend for formed certificates: "concat" or "half".
  std::string finality_backend = "concat";
  std::string agent = "themis-noded/1.0";
  std::uint64_t rng_seed = 1;

  // Transaction pipeline.
  /// Genesis balance credited to every consortium account (0 = no funding;
  /// transfers then bounce with insufficient_funds until funded otherwise).
  std::uint64_t genesis_fund = 1'000'000;
  /// Upper bound on transactions per mined block (512 B each on the wire;
  /// the default keeps a full block comfortably inside one frame).
  std::size_t max_block_txs = 256;
  /// Transaction-pool capacity (oldest evicted beyond this).
  std::size_t pool_capacity = 1 << 20;
  /// Admission window for future nonces: a transaction whose nonce is this
  /// far beyond the sender's next expected nonce is rejected as junk.
  std::uint64_t max_nonce_gap = 1024;
  /// Most transactions one admission batch settles: under submission bursts
  /// the combining leader drains up to this many queued transactions, batch-
  /// verifies their signatures, and admits them under a single consensus-lock
  /// acquisition (see accept_transaction).
  std::size_t admit_batch_max = 64;

  // Transport tuning, forwarded to PeerManagerConfig.
  int dial_timeout_ms = 2000;
  int ping_interval_ms = 2000;
  int pong_timeout_ms = 10000;
  int backoff_initial_ms = 200;
  int backoff_max_ms = 5000;
};

class P2pNode {
 public:
  /// `rule` and `policy` as in PowNode; defaults: GHOST + fixed difficulty.
  /// (The daemon installs GEOST from src/core; the p2p library itself stays
  /// independent of the core layer.)
  P2pNode(P2pNodeConfig config,
          std::shared_ptr<consensus::ForkChoiceRule> rule = nullptr,
          std::shared_ptr<consensus::DifficultyPolicy> policy = nullptr);
  ~P2pNode();

  P2pNode(const P2pNode&) = delete;
  P2pNode& operator=(const P2pNode&) = delete;

  /// Open/replay the block store, bind the listener, start dialing and (when
  /// configured) mining.  False if the listen port cannot be bound.
  bool start();
  void stop();

  /// Toggle the miner at runtime (an observer node serves sync + relays).
  void set_mining(bool enabled);
  bool mining() const { return mining_enabled_.load(); }

  /// Attach an observability bundle BEFORE start(); trace events are
  /// buffered (thread-safe, wall-clock nanoseconds since start()) and
  /// fill_observability() snapshots the counters on demand.
  void set_observability(obs::Observability* obs) { obs_ = obs; }
  /// Write p2p/chain counters and per-peer link traffic into the bundle.
  void fill_observability();

  /// Invoked (on an internal thread) after every head change.
  void set_head_listener(std::function<void(const P2pNode&)> fn) {
    head_listener_ = std::move(fn);
  }

  // --- live telemetry --------------------------------------------------------
  // Always-on (compiled to no-ops under THEMIS_MIN_TELEMETRY): the node owns
  // the live registry and tx-lifecycle tracker; the RPC gateway registers its
  // own families into the same registry so one scrape covers the whole node.
  obs::live::Registry& live_registry() { return live_registry_; }
  const obs::live::Registry& live_registry() const { return live_registry_; }
  obs::live::StageTracker& stage_tracker() { return stage_tracker_; }
  const obs::live::StageTracker& stage_tracker() const {
    return stage_tracker_;
  }

  /// Seconds since start() (0 before start).
  double uptime_seconds() const;
  /// Readiness probe: started, and — when peers are configured — connected
  /// to at least one (a standalone node is trivially ready).  /health maps
  /// this to 200/503.
  bool ready() const;

  // --- observers (all take the consensus lock) -------------------------------
  ledger::BlockHash head() const;
  std::uint64_t head_height() const;
  std::uint64_t tree_blocks() const;
  /// Blocks in the durable store (0 when running memory-only).
  std::uint64_t store_blocks() const;
  bool contains(const ledger::BlockHash& id) const;

  std::uint16_t listen_port() const { return peers_->listen_port(); }
  std::size_t ready_peer_count() const { return peers_->ready_peer_count(); }
  PeerManager::Stats transport_stats() const { return peers_->stats(); }
  const P2pNodeConfig& config() const { return config_; }

  struct ChainStats {
    std::uint64_t blocks_produced = 0;   ///< mined by this node
    std::uint64_t blocks_rejected = 0;   ///< failed §III validation
    std::uint64_t reorgs = 0;
    std::uint64_t invs_received = 0;
    std::uint64_t invs_redundant = 0;    ///< announced a block we already had
    std::uint64_t blocks_received = 0;   ///< full blocks over the wire
    std::uint64_t blocks_duplicate = 0;  ///< received but already in the tree
    std::uint64_t sync_requests_served = 0;
    std::uint64_t sync_blocks_served = 0;
    std::uint64_t sync_rounds = 0;       ///< getblocks requests we issued
    std::uint64_t store_replayed = 0;    ///< blocks recovered at start()

    // Authenticated state / snapshots.
    std::uint64_t snapshots_written = 0; ///< state snapshots persisted
    std::uint64_t snapshot_height = 0;   ///< height of the latest snapshot
    std::uint64_t blocks_pruned = 0;     ///< store records dropped by pruning
    bool restored_from_snapshot = false; ///< start() loaded a snapshot

    // Checkpoint finality overlay.
    std::uint64_t finalized_height = 0;     ///< highest certified checkpoint
    std::uint64_t ckpt_votes_sent = 0;      ///< our own votes broadcast
    std::uint64_t ckpt_votes_received = 0;  ///< vote frames from peers
    std::uint64_t ckpt_votes_accepted = 0;  ///< counted toward a checkpoint
    std::uint64_t ckpt_votes_rejected = 0;  ///< equivocating/unknown/bad-sig
    std::uint64_t ckpt_certs_formed = 0;    ///< quorums completed locally
    std::uint64_t reorgs_refused_finality = 0;  ///< divergence below finality

    // Transaction pipeline.
    std::uint64_t txs_submitted = 0;     ///< admission attempts (RPC + wire)
    std::uint64_t txs_accepted = 0;      ///< entered the pool
    std::uint64_t txs_rejected = 0;      ///< failed an admission check
    std::uint64_t txs_duplicate = 0;     ///< already pending or confirmed
    std::uint64_t txs_relayed = 0;       ///< full txs served to peers
    std::uint64_t tx_invs_received = 0;  ///< tx inventory entries from peers
    std::uint64_t tx_invs_redundant = 0; ///< announced a tx we already knew
    std::uint64_t txs_received = 0;      ///< full txs over the wire
    std::uint64_t txs_confirmed = 0;     ///< confirmed on the main chain
    std::uint64_t txs_returned = 0;      ///< reorg-abandoned, back in the pool
    std::uint64_t txs_purged = 0;        ///< dropped as permanently stale
  };
  ChainStats chain_stats() const;

  /// duplicates announced to us / inv entries received (the wire analogue of
  /// GossipNetwork::redundant_push_ratio).
  double redundant_announce_ratio() const;

  // --- transaction pipeline --------------------------------------------------

  /// Admit a transaction (RPC gateway entry point): stateless checks, then
  /// signature against the consortium registry, then nonce against the head
  /// state; on acceptance the id is announced to every ready peer.
  TxAdmit submit_transaction(const ledger::SignedTransaction& stx);

  /// Admit many transactions in one combining-queue pass (batched RPC entry
  /// point): the whole vector shares one Schnorr verification batch and one
  /// stateful-admission lock hold.  Returns one verdict per transaction, in
  /// order.
  std::vector<TxAdmit> submit_transactions(
      const std::vector<ledger::SignedTransaction>& stxs);

  struct TxStatusInfo {
    enum class State { unknown, pending, confirmed };
    State state = State::unknown;
    std::optional<ledger::Transaction> tx;
    std::optional<ledger::BlockHash> block;  ///< confirming main-chain block
    std::uint64_t block_height = 0;
    std::uint64_t confirmations = 0;  ///< head_height - block_height + 1
  };
  TxStatusInfo tx_status(const ledger::TxId& id) const;

  struct AccountInfo {
    UInt128 balance;
    std::uint64_t next_nonce = 1;
  };
  /// Balance and next expected nonce at the current head.
  AccountInfo account_info(ledger::NodeId id) const;

  /// Merkle root of the account state at the current head (authstate paged
  /// commitment).  Maintained incrementally from validation deltas; two
  /// nodes at the same head report bit-identical roots.
  Hash32 head_state_root() const;
  /// Sum of all balances at the head (decimal-exact over RPC).
  UInt128 total_supply() const;

  struct BalanceProof {
    bool available = false;  ///< false when the id lies past the committed range
    state::Account account;  ///< claimed state the proof pins down
    state::authstate::AccountProof proof;
    Hash32 state_root{};
    ledger::BlockHash head{};
    std::uint64_t height = 0;
  };
  /// Account state plus a Merkle inclusion proof against head_state_root().
  BalanceProof balance_proof(ledger::NodeId id) const;

  struct BlockInfo {
    ledger::BlockPtr block;
    bool on_main_chain = false;
    std::uint64_t confirmations = 0;  ///< 0 when off the main chain
  };
  std::optional<BlockInfo> block_info(const ledger::BlockHash& hash) const;
  /// Main-chain block at `height` (walks the head chain).
  std::optional<BlockInfo> block_info_at(std::uint64_t height) const;

  // --- checkpoint finality ---------------------------------------------------

  struct FinalityInfo {
    bool enabled = false;
    std::uint64_t interval = 0;
    std::uint64_t finalized_height = 0;
    std::optional<ledger::BlockHash> finalized_block;
    std::uint64_t head_height = 0;
    std::uint64_t lag = 0;  ///< head_height - finalized_height
    std::size_t latest_votes = 0;  ///< voters on the latest certificate
  };
  FinalityInfo finality_info() const;

  /// The aggregate certificate formed at checkpoint `height`, if any (RPC
  /// `get_checkpoint`; themis-cli verifies it offline against the
  /// deterministic consortium keys).
  std::optional<finality::CheckpointCertificate> checkpoint_certificate(
      std::uint64_t height) const;

  std::size_t pool_depth() const { return pool_.size(); }
  /// Smallest usable nonce for `sender`: head-state next_nonce, skipping
  /// nonces already pending in the pool (RPC auto-nonce).
  std::uint64_t next_nonce_hint(ledger::NodeId sender) const;

 private:
  void on_peer_ready(Peer& peer);
  void on_peer_frame(Peer& peer, std::uint32_t type, ByteSpan payload);
  void handle_inv(Peer& peer, ByteSpan payload);
  void handle_getdata(Peer& peer, ByteSpan payload);
  void handle_block(Peer& peer, ByteSpan payload);
  void handle_getblocks(Peer& peer, ByteSpan payload);
  void handle_blocks(Peer& peer, ByteSpan payload);
  void handle_tx_inv(Peer& peer, ByteSpan payload);
  void handle_get_txdata(Peer& peer, ByteSpan payload);
  void handle_tx(Peer& peer, ByteSpan payload);
  void handle_tx_batch(Peer& peer, ByteSpan payload);
  void handle_ckpt_vote(Peer& peer, ByteSpan payload);

  /// Shared admission path for RPC submissions and wire-relayed transactions.
  /// `source_session` = 0 for RPC (announce to everyone).
  ///
  /// Combining-leader batching: callers enqueue their transaction; the first
  /// caller in becomes the leader and drains the queue in batches of up to
  /// `admit_batch_max`, so concurrent submitters share one batched signature
  /// verification and one consensus-lock acquisition instead of paying both
  /// per transaction.
  TxAdmit accept_transaction(const ledger::SignedTransaction& stx,
                             std::uint64_t source_session);
  /// One admission request parked in the combining queue.
  struct AdmitRequest {
    const ledger::SignedTransaction* stx = nullptr;
    std::uint64_t source_session = 0;
    TxAdmit result = TxAdmit::accepted;
    std::optional<crypto::PublicKey> pub;  ///< set when a signature check is due
    bool done = false;
  };
  /// Park `requests` in the combining queue and return once every one has
  /// been settled — becoming the leader if none is active.  This is how a
  /// whole relayed kP2pTxBatch enters admission as one verification batch.
  void enqueue_and_settle(const std::vector<AdmitRequest*>& requests);
  /// Settle one drained batch: stateless checks, batched Schnorr
  /// verification, then stateful admission under a single mu_ hold.
  void process_admit_batch(const std::vector<AdmitRequest*>& batch);
  /// Announce accepted pool transactions: one inventory frame per peer
  /// covering the whole batch, excluding each transaction's source peer.
  void announce_txs(
      const std::vector<std::pair<ledger::TxId, std::uint64_t>>& accepted);

  /// Validate + insert a block (plus any orphans it unblocks), persist it,
  /// update the head and announce news to peers.  `source_session` = 0 for
  /// locally mined blocks.  Returns true if the tree grew.
  bool submit_block(ledger::BlockPtr block, std::uint64_t source_session);
  /// Ask `peer` for the range above our head (locator round).
  void request_sync(Peer& peer);
  /// §III validation plus a body replay against the parent state (rejects
  /// double-spends).  Non-const: state_at() caches snapshots.
  bool validate_locked(const ledger::Block& block);
  /// Bring root_cache_ up to the current head: incremental page re-hash when
  /// the head advanced over recorded deltas, full rebuild otherwise.
  const Hash32& ensure_root_locked() const;
  /// Snapshot (and optionally prune) once the anchor has advanced
  /// snapshot_interval blocks past the last snapshot.
  void maybe_snapshot_locked();
  /// Sign checkpoint votes for every checkpoint height newly covered by the
  /// preferred path (at most one vote per height, ever — re-voting a height
  /// for a different block would be equivocation).  Signed votes are appended
  /// to `out`; the caller broadcasts them after releasing mu_.
  void maybe_vote_locked(std::vector<finality::CheckpointVote>& out);
  /// Hard-finalize a certified checkpoint: head tracker floor (force-switch
  /// if the certified block lost the local weight race), state pin floor,
  /// reconciler immutability floor, aggregate floor, snapshot trigger.
  /// Returns true when the head changed (forced switch).
  bool apply_certificate_locked(const finality::CheckpointCertificate& cert);
  /// Re-check certificates parked for blocks we had not seen yet.  Returns
  /// true when applying one force-switched the head.
  bool drain_pending_certs_locked();
  /// Send votes to every ready peer (except `exclude_session`), suppressed
  /// per peer by the known-inventory set keyed on vote_id().
  void broadcast_votes(const std::vector<finality::CheckpointVote>& votes,
                       std::uint64_t exclude_session);
  void mine_loop();
  void trace(std::string_view event, std::initializer_list<obs::Field> fields);
  std::int64_t wall_nanos() const;
  /// Register every node-level live metric (called once from the ctor; the
  /// hot paths bump the cached pointers in live_, never look up by name).
  void register_live_metrics();

  P2pNodeConfig config_;
  std::shared_ptr<consensus::ForkChoiceRule> rule_;
  std::shared_ptr<consensus::DifficultyPolicy> policy_;
  std::shared_ptr<consensus::KeyRegistry> registry_;
  std::optional<crypto::Keypair> keypair_;

  std::unique_ptr<PeerManager> peers_;

  // --- consensus state, all behind mu_ ---------------------------------------
  mutable std::mutex mu_;
  ledger::BlockTree tree_;
  consensus::HeadTracker tracker_;
  std::unique_ptr<ledger::BlockStore> store_;
  /// Blocks whose parent we have not validated yet, keyed by the parent id
  /// (same buffering discipline as PowNode).
  std::unordered_map<ledger::BlockHash, std::vector<ledger::BlockPtr>,
                     Hash32Hasher>
      pending_;
  /// In-flight getdata requests (dedup across peers), steady-clock ms.
  std::unordered_map<ledger::BlockHash, std::int64_t, Hash32Hasher> requested_;
  /// In-flight tx getdata requests, same discipline as requested_.
  std::unordered_map<ledger::TxId, std::int64_t, Hash32Hasher> requested_tx_;
  /// Ledger states along the tree (per-block snapshot cache; mutable so
  /// const observers can materialize snapshots — still guarded by mu_).
  mutable state::StateManager state_;
  /// Confirmed-tx index + pool/chain reconciliation across head changes.
  state::PoolReconciler reconciler_;
  /// Lazily maintained authstate commitment for the current head (mutable:
  /// const observers materialize it on demand — still guarded by mu_).
  mutable state::authstate::RootCache root_cache_;
  mutable ledger::BlockHash root_head_{};
  mutable bool root_valid_ = false;
  /// Anchor height of the latest snapshot written or restored.
  std::uint64_t last_snapshot_height_ = 0;
  /// Checkpoint finality overlay (engaged when checkpoint_interval > 0 and
  /// signatures are on; guarded by mu_ like the rest of consensus).
  std::optional<finality::CheckpointTracker> ckpt_;
  /// Highest checkpoint height this node has signed a vote for (monotone —
  /// the self-equivocation guard).
  std::uint64_t last_voted_height_ = 0;
  /// Certificates that reached quorum before their block arrived (votes for
  /// unknown blocks are counted; the finalization itself waits for the
  /// block).  Drained after every tree insert.
  std::vector<finality::CheckpointCertificate> pending_certs_;
  ChainStats stats_;

  /// Pending transactions.  Internally synchronized; see the lock-order rule
  /// in the header comment.
  ledger::TxPool pool_;

  // --- combining-leader admission queue --------------------------------------
  // admit_mu_ guards only the queue and the leader flag; it is never held
  // while mu_ (or any crypto work) runs, so the order admit_mu_ -> mu_ can
  // never invert.
  std::mutex admit_mu_;
  std::condition_variable admit_cv_;
  std::deque<AdmitRequest*> admit_queue_;
  bool admit_leader_active_ = false;

  // --- miner -----------------------------------------------------------------
  std::thread miner_thread_;
  std::mutex miner_mu_;
  std::condition_variable miner_cv_;
  std::atomic<bool> mining_enabled_{false};
  std::atomic<std::uint64_t> chain_version_{0};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> started_{false};

  std::function<void(const P2pNode&)> head_listener_;

  obs::Observability* obs_ = nullptr;
  std::mutex trace_mu_;
  std::chrono::steady_clock::time_point start_time_;

  // --- live telemetry --------------------------------------------------------
  obs::live::Registry live_registry_;
  obs::live::StageTracker stage_tracker_{live_registry_};
  /// Cached metric pointers, registered once in register_live_metrics().
  struct LiveCounters {
    obs::live::Counter* txs_submitted = nullptr;
    obs::live::Counter* txs_accepted = nullptr;
    obs::live::Counter* txs_rejected = nullptr;
    obs::live::Counter* txs_duplicate = nullptr;
    obs::live::Counter* blocks_mined = nullptr;
    obs::live::Counter* blocks_received = nullptr;
    obs::live::Counter* blocks_rejected = nullptr;
    obs::live::Counter* head_changes = nullptr;
    obs::live::Counter* reorgs = nullptr;
    obs::live::Counter* ckpt_votes_sent = nullptr;
    obs::live::Counter* ckpt_votes_received = nullptr;
    obs::live::Counter* ckpt_votes_accepted = nullptr;
    obs::live::Counter* ckpt_votes_rejected = nullptr;
    obs::live::Counter* ckpt_certs = nullptr;
    obs::live::Histogram* admit_batch = nullptr;
    obs::live::Histogram* block_submit = nullptr;
  } live_;
};

}  // namespace themis::p2p
