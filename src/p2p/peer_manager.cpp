#include "p2p/peer_manager.h"

#include <chrono>

#include "common/check.h"
#include "common/serialize.h"
#include "consensus/wire.h"

namespace themis::p2p {

namespace {

std::int64_t steady_now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

std::pair<std::string, std::uint16_t> parse_host_port(const std::string& s) {
  const auto colon = s.rfind(':');
  expects(colon != std::string::npos && colon > 0 && colon + 1 < s.size(),
          "peer address must be host:port");
  const std::string host = s.substr(0, colon);
  const unsigned long port = std::stoul(s.substr(colon + 1));
  expects(port > 0 && port <= 65535, "peer port out of range");
  return {host, static_cast<std::uint16_t>(port)};
}

PeerManager::PeerManager(PeerManagerConfig config)
    : config_(std::move(config)), jitter_rng_(config_.jitter_seed) {
  for (const std::string& address : config_.dial) {
    const auto [host, port] = parse_host_port(address);
    DialSlot slot;
    slot.host = host;
    slot.port = port;
    dial_slots_.push_back(std::move(slot));
  }
}

PeerManager::~PeerManager() { stop(); }

bool PeerManager::start() {
  expects(!started_, "peer manager already started");
  if (config_.listen) {
    if (!listener_.listen(config_.listen_port)) return false;
    accept_thread_ = std::thread([this] { accept_loop(); });
  }
  maintenance_thread_ = std::thread([this] { maintenance_loop(); });
  started_ = true;
  return true;
}

void PeerManager::stop() {
  if (!started_) return;
  stopping_.store(true);
  cv_.notify_all();
  listener_.interrupt();
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.close();

  // Unblock every reader, then join.  Readers may still be dispatching their
  // final frames into the handlers while we wait — handlers must not assume
  // stop() implies quiescence until it returns.
  std::vector<std::shared_ptr<Peer>> snapshot;
  {
    std::lock_guard<std::mutex> lock(peers_mu_);
    for (auto& [id, peer] : peers_) snapshot.push_back(peer);
  }
  for (auto& peer : snapshot) peer->mark_dead();
  if (maintenance_thread_.joinable()) maintenance_thread_.join();
  for (auto& peer : snapshot) {
    if (peer->reader.joinable()) peer->reader.join();
  }
  {
    std::lock_guard<std::mutex> lock(peers_mu_);
    // Fold the final peers' traffic into the dead totals so stats() stays
    // complete after shutdown (reports run post-stop).
    for (auto& [id, peer] : peers_) {
      dead_bytes_in_.fetch_add(peer->bytes_in.load(std::memory_order_relaxed),
                               std::memory_order_relaxed);
      dead_bytes_out_.fetch_add(
          peer->bytes_out.load(std::memory_order_relaxed),
          std::memory_order_relaxed);
    }
    peers_.clear();
  }
  started_ = false;
}

Bytes PeerManager::our_handshake() {
  HandshakeMsg hs = config_.handshake;
  if (height_provider_) hs.head_height = height_provider_();
  return hs.encode();
}

void PeerManager::accept_loop() {
  for (;;) {
    auto socket = listener_.accept();
    if (!socket.has_value()) return;  // interrupted or fatal
    if (stopping_.load()) return;
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    adopt_socket(std::move(*socket), /*outbound=*/false, /*dial_index=*/-1);
  }
}

void PeerManager::adopt_socket(TcpSocket socket, bool outbound, int dial_index) {
  socket.set_nodelay(true);
  // The receive timeout is a periodic wakeup so readers notice shutdown even
  // if the remote end hangs without closing.
  socket.set_timeouts(config_.send_timeout_ms, /*recv_ms=*/500);

  std::shared_ptr<Peer> peer;
  {
    std::lock_guard<std::mutex> lock(peers_mu_);
    const std::uint64_t id = next_session_id_++;
    peer = std::make_shared<Peer>(id, std::move(socket), outbound, dial_index);
    peers_.emplace(id, peer);
    if (dial_index >= 0) {
      dial_slots_[static_cast<std::size_t>(dial_index)].session_id = id;
    }
  }
  peer->last_recv_ms.store(steady_now_ms(), std::memory_order_relaxed);

  // Both sides speak first: the handshake goes out immediately and the
  // reader requires the first incoming frame to be the remote's handshake.
  if (!peer->send_frame(consensus::kP2pHandshake, our_handshake())) {
    peer->mark_dead();
  }
  peer->reader = std::thread([this, peer] { reader_loop(peer); });
}

void PeerManager::reader_loop(const std::shared_ptr<Peer>& peer) {
  std::uint8_t buf[16384];
  while (!peer->dead() && !stopping_.load()) {
    const int n = peer->socket().recv_some(buf, sizeof(buf));
    if (n == -1) continue;  // receive-timeout tick: re-check flags
    if (n <= 0) break;      // orderly close or hard error
    peer->bytes_in.fetch_add(static_cast<std::uint64_t>(n),
                             std::memory_order_relaxed);
    peer->last_recv_ms.store(steady_now_ms(), std::memory_order_relaxed);
    peer->decoder().feed(ByteSpan(buf, static_cast<std::size_t>(n)));
    try {
      while (auto frame = peer->decoder().poll()) {
        peer->frames_in.fetch_add(1, std::memory_order_relaxed);
        if (!handle_frame(*peer, *frame)) {
          peer->mark_dead();
          break;
        }
      }
    } catch (const FrameError&) {
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      break;
    } catch (const DecodeError&) {
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      break;
    }
  }
  const bool was_ready = peer->ready();
  peer->mark_dead();
  disconnects_.fetch_add(1, std::memory_order_relaxed);
  if (was_ready && on_disconnect_ && !stopping_.load()) on_disconnect_(*peer);
  // The maintenance thread reaps the peer (joins this thread, frees the dial
  // slot); at stop() the manager joins directly.
}

bool PeerManager::handle_frame(Peer& peer, const Frame& frame) {
  if (!peer.ready()) {
    // Nothing but a valid handshake is acceptable on a fresh connection.
    if (frame.type != consensus::kP2pHandshake) {
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    HandshakeMsg remote;
    try {
      remote = HandshakeMsg::decode(frame.payload);
    } catch (const DecodeError&) {
      handshakes_rejected_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    const HandshakeReject verdict = check_handshake(
        remote, config_.handshake.network, config_.handshake.version,
        config_.handshake.genesis);
    if (verdict != HandshakeReject::ok) {
      handshakes_rejected_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    peer.set_ready(remote);
    if (on_ready_) on_ready_(peer);
    return true;
  }

  switch (frame.type) {
    case consensus::kP2pHandshake:
      // A second handshake is a protocol violation.
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      return false;
    case consensus::kP2pPing: {
      const PingMsg ping = PingMsg::decode(frame.payload);
      return peer.send_frame(consensus::kP2pPong, PingMsg{ping.nonce}.encode());
    }
    case consensus::kP2pPong: {
      const PingMsg pong = PingMsg::decode(frame.payload);
      if (pong.nonce == peer.ping_nonce.load(std::memory_order_relaxed)) {
        peer.ping_nonce.store(0, std::memory_order_relaxed);
        pongs_received_.fetch_add(1, std::memory_order_relaxed);
      }
      return true;
    }
    default:
      if (on_frame_) on_frame_(peer, frame.type, frame.payload);
      return !peer.dead();
  }
}

void PeerManager::maintenance_loop() {
  while (!stopping_.load()) {
    {
      std::unique_lock<std::mutex> lock(cv_mu_);
      cv_.wait_for(lock, std::chrono::milliseconds(config_.tick_ms),
                   [this] { return stopping_.load(); });
    }
    if (stopping_.load()) return;
    const std::int64_t now = steady_now_ms();
    ping_and_reap(now);
    dial_due_slots(now);
  }
}

void PeerManager::ping_and_reap(std::int64_t now_ms) {
  std::vector<std::shared_ptr<Peer>> snapshot;
  {
    std::lock_guard<std::mutex> lock(peers_mu_);
    for (auto& [id, peer] : peers_) snapshot.push_back(peer);
  }

  for (auto& peer : snapshot) {
    if (peer->dead()) continue;
    if (!peer->ready()) {
      // A connection that never completes its handshake gets the pong
      // deadline too (slow-loris protection).
      if (now_ms - peer->last_recv_ms.load(std::memory_order_relaxed) >
          config_.pong_timeout_ms) {
        ping_timeouts_.fetch_add(1, std::memory_order_relaxed);
        peer->mark_dead();
      }
      continue;
    }
    const std::uint64_t outstanding =
        peer->ping_nonce.load(std::memory_order_relaxed);
    if (outstanding != 0) {
      if (now_ms - peer->ping_sent_ms.load(std::memory_order_relaxed) >
          config_.pong_timeout_ms) {
        ping_timeouts_.fetch_add(1, std::memory_order_relaxed);
        peer->mark_dead();
      }
      continue;
    }
    if (now_ms - peer->last_recv_ms.load(std::memory_order_relaxed) >=
        config_.ping_interval_ms) {
      const std::uint64_t nonce = jitter_rng_.next_u64() | 1;  // never 0
      peer->ping_nonce.store(nonce, std::memory_order_relaxed);
      peer->ping_sent_ms.store(now_ms, std::memory_order_relaxed);
      pings_sent_.fetch_add(1, std::memory_order_relaxed);
      if (!peer->send_frame(consensus::kP2pPing, PingMsg{nonce}.encode())) {
        peer->mark_dead();
      }
    }
  }

  // Reap: join readers of dead peers and free their dial slots so the
  // dialer below can schedule a redial.
  for (auto& peer : snapshot) {
    if (!peer->dead()) continue;
    if (peer->reader.joinable() &&
        peer->reader.get_id() != std::this_thread::get_id()) {
      peer->reader.join();
    } else if (peer->reader.joinable()) {
      continue;  // cannot join ourselves; next tick
    }
    dead_bytes_in_.fetch_add(peer->bytes_in.load(std::memory_order_relaxed),
                             std::memory_order_relaxed);
    dead_bytes_out_.fetch_add(peer->bytes_out.load(std::memory_order_relaxed),
                              std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(peers_mu_);
      peers_.erase(peer->session_id());
    }
    if (peer->dial_index() >= 0) {
      DialSlot& slot = dial_slots_[static_cast<std::size_t>(peer->dial_index())];
      if (slot.session_id == peer->session_id()) {
        slot.session_id = 0;
        slot.attempts = 0;  // fresh backoff ladder for the redial
        slot.next_attempt_ms = 0;
      }
    }
  }
}

void PeerManager::dial_due_slots(std::int64_t now_ms) {
  for (std::size_t i = 0; i < dial_slots_.size(); ++i) {
    DialSlot& slot = dial_slots_[i];
    if (slot.session_id != 0) continue;
    if (now_ms < slot.next_attempt_ms) continue;
    if (stopping_.load()) return;

    dials_attempted_.fetch_add(1, std::memory_order_relaxed);
    if (slot.ever_connected && slot.attempts == 0) {
      reconnects_.fetch_add(1, std::memory_order_relaxed);
    }
    TcpSocket socket =
        TcpSocket::connect(slot.host, slot.port, config_.dial_timeout_ms);
    if (!socket.valid()) {
      dials_failed_.fetch_add(1, std::memory_order_relaxed);
      // Exponential backoff, capped, with +/-25% jitter so a restarted
      // network does not redial in lockstep.
      const std::int64_t base = std::min<std::int64_t>(
          config_.backoff_max_ms,
          static_cast<std::int64_t>(config_.backoff_initial_ms)
              << std::min<std::uint32_t>(slot.attempts, 16));
      const double jitter = 0.75 + 0.5 * jitter_rng_.next_double();
      slot.next_attempt_ms =
          now_ms + static_cast<std::int64_t>(static_cast<double>(base) * jitter);
      ++slot.attempts;
      continue;
    }
    slot.attempts = 0;
    slot.ever_connected = true;
    adopt_socket(std::move(socket), /*outbound=*/true, static_cast<int>(i));
  }
}

bool PeerManager::send(std::uint64_t session_id, std::uint32_t type,
                       ByteSpan payload) {
  std::shared_ptr<Peer> peer;
  {
    std::lock_guard<std::mutex> lock(peers_mu_);
    const auto it = peers_.find(session_id);
    if (it == peers_.end()) return false;
    peer = it->second;
  }
  if (peer->dead() || !peer->ready()) return false;
  return peer->send_frame(type, payload);
}

void PeerManager::broadcast(std::uint32_t type, ByteSpan payload,
                            std::uint64_t exclude_session) {
  for (const auto& peer : ready_peers()) {
    if (peer->session_id() == exclude_session) continue;
    if (!peer->send_frame(type, payload)) peer->mark_dead();
  }
}

std::vector<std::shared_ptr<Peer>> PeerManager::ready_peers() const {
  std::vector<std::shared_ptr<Peer>> out;
  std::lock_guard<std::mutex> lock(peers_mu_);
  out.reserve(peers_.size());
  for (const auto& [id, peer] : peers_) {
    if (peer->ready() && !peer->dead()) out.push_back(peer);
  }
  return out;
}

std::size_t PeerManager::ready_peer_count() const {
  return ready_peers().size();
}

PeerManager::Stats PeerManager::stats() const {
  Stats s;
  s.connections_accepted = connections_accepted_.load();
  s.dials_attempted = dials_attempted_.load();
  s.dials_failed = dials_failed_.load();
  s.reconnects = reconnects_.load();
  s.handshakes_rejected = handshakes_rejected_.load();
  s.protocol_errors = protocol_errors_.load();
  s.disconnects = disconnects_.load();
  s.pings_sent = pings_sent_.load();
  s.pongs_received = pongs_received_.load();
  s.ping_timeouts = ping_timeouts_.load();
  s.bytes_in = dead_bytes_in_.load();
  s.bytes_out = dead_bytes_out_.load();
  std::lock_guard<std::mutex> lock(peers_mu_);
  for (const auto& [id, peer] : peers_) {
    s.bytes_in += peer->bytes_in.load(std::memory_order_relaxed);
    s.bytes_out += peer->bytes_out.load(std::memory_order_relaxed);
  }
  return s;
}

}  // namespace themis::p2p
