#include "p2p/sync.h"

#include "common/check.h"

namespace themis::p2p {

using ledger::BlockHash;
using ledger::BlockPtr;
using ledger::BlockTree;

std::vector<BlockHash> build_locator(const BlockTree& tree,
                                     const BlockHash& head) {
  expects(tree.contains(head), "locator head not in tree");
  std::vector<BlockHash> locator;
  BlockHash cur = head;
  std::size_t step = 1;
  while (true) {
    locator.push_back(cur);
    if (cur == tree.genesis_hash()) break;
    if (locator.size() > kLocatorDenseSpan) step *= 2;
    for (std::size_t i = 0; i < step; ++i) {
      const auto parent = tree.parent(cur);
      if (!parent.has_value()) break;
      cur = *parent;
      if (cur == tree.genesis_hash()) break;  // clamp: genesis is the floor
    }
  }
  return locator;
}

std::vector<BlockPtr> serve_range(const BlockTree& tree, const BlockHash& head,
                                  const std::vector<BlockHash>& locator,
                                  std::size_t max_blocks,
                                  std::size_t max_bytes) {
  expects(tree.contains(head), "serve head not in tree");
  const std::vector<BlockHash> chain = tree.chain_to(head);

  // The fork point: newest locator entry on our main chain.  Heights index
  // straight into `chain`, so each candidate costs two lookups.
  std::size_t start = 0;  // default: genesis (always common)
  for (const BlockHash& candidate : locator) {
    if (!tree.contains(candidate)) continue;
    const std::uint64_t height = tree.height(candidate);
    if (height < chain.size() && chain[height] == candidate) {
      start = static_cast<std::size_t>(height);
      break;
    }
  }

  std::vector<BlockPtr> out;
  std::size_t bytes = 0;
  for (std::size_t i = start + 1; i < chain.size() && out.size() < max_blocks;
       ++i) {
    BlockPtr block = tree.block(chain[i]);
    bytes += block->size_bytes();
    out.push_back(std::move(block));
    if (bytes >= max_bytes) break;
  }
  return out;
}

}  // namespace themis::p2p
