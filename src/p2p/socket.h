// Minimal RAII wrappers over POSIX TCP sockets (IPv4).
//
// The p2p layer needs exactly four operations — listen, accept, connect,
// shuttle bytes — plus the ability to unblock a thread parked in recv() or
// accept() from another thread (shutdown()).  Everything speaks blocking
// sockets with send/receive timeouts; the threading model lives one layer up
// in PeerManager.  No external dependencies, loopback and LAN focused.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>

#include "common/bytes.h"

namespace themis::p2p {

/// A connected TCP stream.  Move-only; closes on destruction.
class TcpSocket {
 public:
  TcpSocket() = default;
  explicit TcpSocket(int fd) : fd_(fd) {}
  ~TcpSocket() { close(); }

  TcpSocket(TcpSocket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  TcpSocket& operator=(TcpSocket&& other) noexcept;
  TcpSocket(const TcpSocket&) = delete;
  TcpSocket& operator=(const TcpSocket&) = delete;

  /// Connect to host:port with a bounded connect timeout.  Returns an
  /// invalid socket (valid() == false) on failure.
  static TcpSocket connect(const std::string& host, std::uint16_t port,
                           int timeout_ms);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Write the whole buffer (retrying short writes).  False on error or
  /// send-timeout; the connection should be dropped.
  bool send_all(ByteSpan data);

  /// Write at most one kernel buffer's worth.  >0: bytes written; -1: the
  /// socket buffer is full (would block / send-timeout tick); -2 hard error.
  /// The partial-write primitive an event loop needs.
  int send_some(ByteSpan data);

  /// Read up to `buf_len` bytes.  >0: bytes read; 0: orderly close;
  /// <0: error or receive-timeout tick (-1 timeout, -2 hard error).
  int recv_some(std::uint8_t* buf, std::size_t buf_len);

  /// O_NONBLOCK toggle: recv_some()/send_some() then return -1 instead of
  /// blocking when no data/space is available (edge for event loops).
  void set_nonblocking(bool on);

  /// Wake any thread blocked in recv_some()/send_all() on this socket; the
  /// call is safe from another thread and idempotent.
  void shutdown();

  void close();

  /// Bound per-call blocking time for send/recv (SO_SNDTIMEO/SO_RCVTIMEO).
  void set_timeouts(int send_ms, int recv_ms);
  void set_nodelay(bool on);

 private:
  int fd_ = -1;
};

/// A listening TCP socket.  Binds 0.0.0.0; port 0 picks an ephemeral port
/// (read it back with port()).
///
/// Thread contract: accept() runs on one thread; interrupt() may be called
/// from any thread to unblock it; close() must only run once no thread is
/// inside accept() (join the accept thread first).
class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener() { close(); }

  TcpListener(TcpListener&&) = delete;
  TcpListener& operator=(TcpListener&&) = delete;

  /// False if bind/listen failed.
  bool listen(std::uint16_t port);

  /// Block until a connection arrives.  nullopt after interrupt()/close() or
  /// on a fatal accept error.
  std::optional<TcpSocket> accept();

  /// Accept without blocking (for event loops that learned readability from
  /// epoll/poll).  nullopt when no connection is pending or the listener is
  /// closed.
  std::optional<TcpSocket> accept_nonblocking();

  /// Raw fd for event-loop registration (-1 when closed).
  int fd() const { return fd_.load(); }

  /// O_NONBLOCK toggle for the listening socket itself, so
  /// accept_nonblocking() never parks the event loop.
  void set_nonblocking(bool on);

  std::uint16_t port() const { return port_; }
  bool valid() const { return fd_.load() >= 0; }

  /// Unblock a thread parked in accept() (safe from any thread, idempotent).
  void interrupt();

  /// Close the socket; only after the accept thread has been joined.
  void close();

 private:
  std::atomic<int> fd_{-1};
  std::uint16_t port_ = 0;
};

}  // namespace themis::p2p
