// Chain-sync protocol logic (pure functions over BlockTree).
//
// A node that falls behind — fresh start, restart after a crash, or a healed
// partition — catches up by sending kP2pGetBlocks with a *locator*: a sample
// of its main-chain block hashes, newest first, dense near the head and
// exponentially sparser toward genesis (so the locator stays O(log height)
// regardless of chain length).  The responder finds the newest locator entry
// on its own main chain — the best known common point — and answers with the
// following main-chain blocks in order, bounded by count and bytes.  The
// requester applies them, and repeats with a fresh locator until a response
// comes back empty.
//
// Everything here is deterministic and socket-free so the protocol can be
// unit-tested against hand-built trees; P2pNode wires it to the transport.
#pragma once

#include <cstddef>
#include <vector>

#include "ledger/blocktree.h"

namespace themis::p2p {

/// Number of consecutive hashes below the head before the locator spacing
/// starts doubling (Bitcoin uses 10; the value only trades locator size
/// against one extra sync round trip).
inline constexpr std::size_t kLocatorDenseSpan = 8;

/// Main-chain locator for `head`, newest first, genesis always last.
std::vector<ledger::BlockHash> build_locator(const ledger::BlockTree& tree,
                                             const ledger::BlockHash& head);

/// Serve a range request: find the newest locator hash that sits on OUR main
/// chain (genesis matches every honest locator, so a fork point always
/// exists) and return up to `max_blocks` blocks after it, in chain order,
/// stopping early once `max_bytes` of encodings are queued.  Locator entries
/// we have never seen, or that sit on a side branch of ours, are skipped —
/// the requester's chain past the fork point is exactly what sync replaces.
std::vector<ledger::BlockPtr> serve_range(const ledger::BlockTree& tree,
                                          const ledger::BlockHash& head,
                                          const std::vector<ledger::BlockHash>& locator,
                                          std::size_t max_blocks,
                                          std::size_t max_bytes);

}  // namespace themis::p2p
