// Payload encodings for the p2p frame types (consensus/wire.h, kP2p*).
//
// All payloads use the canonical little-endian primitives from
// common/serialize.h, so every message is a pure function of its fields and
// decode(encode(m)) == m by construction.  Decoders throw DecodeError on any
// malformed input (short buffers, absurd counts, trailing garbage); the
// connection owner treats that exactly like a frame error and closes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "finality/checkpoint.h"
#include "ledger/types.h"

namespace themis::p2p {

/// Bumped whenever a frame payload changes incompatibly.  Handshakes carrying
/// a different version are rejected before any other frame is processed.
inline constexpr std::uint32_t kProtocolVersion = 1;

/// Identifies the network (chain) a node is on; a second deployment with
/// different parameters would pick a different magic so stray cross-network
/// connections die at the handshake.
inline constexpr std::uint32_t kNetworkMagic = 0x54484d53;  // "SMHT"

/// Upper bound on hashes in one inv / getdata / locator message.
inline constexpr std::size_t kMaxInvHashes = 2048;

/// Upper bound on blocks in one kP2pBlocks sync batch.
inline constexpr std::size_t kMaxSyncBlocks = 512;

/// First frame on every connection, in both directions.  A peer whose
/// network magic, protocol version or genesis hash differs is rejected
/// (close, no reply) — it is on a different network or speaks a different
/// protocol, and nothing after the handshake could be interpreted safely.
struct HandshakeMsg {
  std::uint32_t network = kNetworkMagic;
  std::uint32_t version = kProtocolVersion;
  ledger::BlockHash genesis{};
  std::uint64_t node_id = 0;
  std::uint16_t listen_port = 0;  ///< 0 = not listening (inbound-only peer)
  std::uint64_t head_height = 0;  ///< best height at connect time (sync hint)
  std::string agent;              ///< free-form software identifier

  Bytes encode() const;
  static HandshakeMsg decode(ByteSpan raw);
  bool operator==(const HandshakeMsg&) const = default;
};

/// Why a handshake was refused (kept as an enum so tests and counters can
/// assert on the precise reason).
enum class HandshakeReject {
  ok,
  wrong_network,
  wrong_version,
  wrong_genesis,
};

/// Validate a remote handshake against our own parameters.
HandshakeReject check_handshake(const HandshakeMsg& remote,
                                std::uint32_t expected_network,
                                std::uint32_t expected_version,
                                const ledger::BlockHash& expected_genesis);

/// kP2pPing / kP2pPong carry one nonce; the pong echoes the ping's.
struct PingMsg {
  std::uint64_t nonce = 0;

  Bytes encode() const;
  static PingMsg decode(ByteSpan raw);
};

/// kP2pInv / kP2pGetData: a list of block hashes.  Inv announces blocks the
/// sender has; getdata requests the full encodings for the subset the
/// receiver lacks (the inventory-based duplicate suppression that replaces
/// net/gossip's seen-set accounting on the real network).
struct InvMsg {
  std::vector<ledger::BlockHash> hashes;

  Bytes encode() const;
  static InvMsg decode(ByteSpan raw);
};

/// kP2pGetBlocks: chain-sync range request.  The locator lists main-chain
/// hashes of the requester, newest first, with exponentially growing gaps
/// (see sync.h); the responder finds the first hash it also has on its main
/// chain and serves up to max_blocks successors.
struct GetBlocksMsg {
  std::vector<ledger::BlockHash> locator;
  std::uint32_t max_blocks = kMaxSyncBlocks;

  Bytes encode() const;
  static GetBlocksMsg decode(ByteSpan raw);
};

/// kP2pBlocks: the range response — canonical block encodings in chain order.
/// An empty batch means the requester is already at (or past) our head.
struct BlocksMsg {
  std::vector<Bytes> blocks;

  Bytes encode() const;
  static BlocksMsg decode(ByteSpan raw);
};

/// Upper bound on transactions in one kP2pTxBatch frame.
inline constexpr std::size_t kMaxBatchTxs = 2048;

/// kP2pTxBatch: canonical SignedTransaction encodings, sent in response to
/// kP2pGetTxData.  Delivering the whole requested set in one frame lets the
/// receiving node run a single batch signature verification over it instead
/// of one Schnorr check per relay message.
struct TxBatchMsg {
  std::vector<Bytes> txs;

  Bytes encode() const;
  static TxBatchMsg decode(ByteSpan raw);
};

/// kP2pCkptVote: one checkpoint finality vote (src/finality).  Votes flood
/// like block invs — every node relays a newly accepted vote to peers not
/// already known to have it (Peer::mark_known on the vote id) — so quorum
/// assembles in O(gossip diameter) without any leader.  Malformed payloads
/// throw DecodeError and close the connection like every other frame.
struct CkptVoteMsg {
  finality::CheckpointVote vote;

  Bytes encode() const { return vote.encode(); }
  static CkptVoteMsg decode(ByteSpan raw) {
    return CkptVoteMsg{finality::CheckpointVote::decode(raw)};
  }
};

}  // namespace themis::p2p
