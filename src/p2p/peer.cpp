#include "p2p/peer.h"

namespace themis::p2p {

bool Peer::send_frame(std::uint32_t type, ByteSpan payload) {
  const Bytes frame = encode_frame(type, payload);
  std::lock_guard<std::mutex> lock(write_mu_);
  if (dead()) return false;
  if (!socket_.send_all(frame)) {
    return false;
  }
  bytes_out.fetch_add(frame.size(), std::memory_order_relaxed);
  frames_out.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void Peer::set_ready(const HandshakeMsg& remote) {
  remote_ = remote;  // written by the reader thread before the release store
  ready_.store(true, std::memory_order_release);
}

bool Peer::mark_known(const ledger::BlockHash& id) {
  std::lock_guard<std::mutex> lock(known_mu_);
  if (known_.size() >= kMaxKnown) known_.clear();
  return known_.insert(id).second;
}

bool Peer::knows(const ledger::BlockHash& id) const {
  std::lock_guard<std::mutex> lock(known_mu_);
  return known_.contains(id);
}

}  // namespace themis::p2p
