#include "p2p/messages.h"

#include "common/serialize.h"

namespace themis::p2p {

namespace {

void encode_hashes(Writer& w, const std::vector<ledger::BlockHash>& hashes) {
  w.varint(hashes.size());
  for (const auto& h : hashes) w.hash(h);
}

std::vector<ledger::BlockHash> decode_hashes(Reader& r, std::size_t max) {
  const std::uint64_t count = r.varint();
  if (count > max) throw DecodeError("hash list exceeds protocol maximum");
  std::vector<ledger::BlockHash> out;
  out.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) out.push_back(r.hash());
  return out;
}

}  // namespace

Bytes HandshakeMsg::encode() const {
  Writer w(64 + agent.size());
  w.u32(network);
  w.u32(version);
  w.hash(genesis);
  w.u64(node_id);
  w.u16(listen_port);
  w.u64(head_height);
  w.str(agent);
  return w.take();
}

HandshakeMsg HandshakeMsg::decode(ByteSpan raw) {
  Reader r(raw);
  HandshakeMsg m;
  m.network = r.u32();
  m.version = r.u32();
  m.genesis = r.hash();
  m.node_id = r.u64();
  m.listen_port = r.u16();
  m.head_height = r.u64();
  m.agent = r.str();
  r.expect_done();
  return m;
}

HandshakeReject check_handshake(const HandshakeMsg& remote,
                                std::uint32_t expected_network,
                                std::uint32_t expected_version,
                                const ledger::BlockHash& expected_genesis) {
  if (remote.network != expected_network) return HandshakeReject::wrong_network;
  if (remote.version != expected_version) return HandshakeReject::wrong_version;
  if (remote.genesis != expected_genesis) return HandshakeReject::wrong_genesis;
  return HandshakeReject::ok;
}

Bytes PingMsg::encode() const {
  Writer w(8);
  w.u64(nonce);
  return w.take();
}

PingMsg PingMsg::decode(ByteSpan raw) {
  Reader r(raw);
  PingMsg m;
  m.nonce = r.u64();
  r.expect_done();
  return m;
}

Bytes InvMsg::encode() const {
  Writer w(2 + 32 * hashes.size());
  encode_hashes(w, hashes);
  return w.take();
}

InvMsg InvMsg::decode(ByteSpan raw) {
  Reader r(raw);
  InvMsg m;
  m.hashes = decode_hashes(r, kMaxInvHashes);
  r.expect_done();
  return m;
}

Bytes GetBlocksMsg::encode() const {
  Writer w(8 + 32 * locator.size());
  encode_hashes(w, locator);
  w.u32(max_blocks);
  return w.take();
}

GetBlocksMsg GetBlocksMsg::decode(ByteSpan raw) {
  Reader r(raw);
  GetBlocksMsg m;
  m.locator = decode_hashes(r, kMaxInvHashes);
  m.max_blocks = r.u32();
  r.expect_done();
  return m;
}

Bytes BlocksMsg::encode() const {
  std::size_t total = 8;
  for (const Bytes& b : blocks) total += b.size() + 5;
  Writer w(total);
  w.varint(blocks.size());
  for (const Bytes& b : blocks) w.bytes(b);
  return w.take();
}

BlocksMsg BlocksMsg::decode(ByteSpan raw) {
  Reader r(raw);
  BlocksMsg m;
  const std::uint64_t count = r.varint();
  if (count > kMaxSyncBlocks) throw DecodeError("sync batch exceeds maximum");
  m.blocks.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) m.blocks.push_back(r.bytes());
  r.expect_done();
  return m;
}

Bytes TxBatchMsg::encode() const {
  std::size_t total = 8;
  for (const Bytes& b : txs) total += b.size() + 5;
  Writer w(total);
  w.varint(txs.size());
  for (const Bytes& b : txs) w.bytes(b);
  return w.take();
}

TxBatchMsg TxBatchMsg::decode(ByteSpan raw) {
  Reader r(raw);
  TxBatchMsg m;
  const std::uint64_t count = r.varint();
  if (count > kMaxBatchTxs) throw DecodeError("tx batch exceeds maximum");
  m.txs.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) m.txs.push_back(r.bytes());
  r.expect_done();
  return m;
}

}  // namespace themis::p2p
