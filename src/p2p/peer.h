// One live TCP connection to a remote node.
//
// A Peer owns the socket, an incremental FrameDecoder fed by its reader
// thread, a write mutex serializing frame sends from any thread, per-peer
// byte/frame counters, and the known-inventory set that implements
// announcement duplicate suppression (the socket-transport analogue of
// net/gossip's per-node seen-set accounting).
//
// Thread contract: exactly one reader thread (owned by PeerManager) calls
// recv/decode; send_frame() and the inventory helpers are safe from any
// thread; mark_dead()/socket shutdown may come from the maintenance thread
// on ping timeout or from stop().
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>

#include "ledger/types.h"
#include "p2p/frame.h"
#include "p2p/messages.h"
#include "p2p/socket.h"

namespace themis::p2p {

class Peer {
 public:
  Peer(std::uint64_t session_id, TcpSocket socket, bool outbound,
       int dial_index)
      : session_id_(session_id),
        outbound_(outbound),
        dial_index_(dial_index),
        socket_(std::move(socket)) {}

  std::uint64_t session_id() const { return session_id_; }
  bool outbound() const { return outbound_; }
  /// Index into the configured dial list (-1 for inbound connections).
  int dial_index() const { return dial_index_; }

  /// Encode and write one frame.  Serialized by an internal mutex; false on
  /// socket failure (the peer should then be dropped).
  bool send_frame(std::uint32_t type, ByteSpan payload);

  // --- handshake state -------------------------------------------------------
  /// Record the validated remote handshake and flip ready().
  void set_ready(const HandshakeMsg& remote);
  bool ready() const { return ready_.load(std::memory_order_acquire); }
  /// Valid only after ready() is true (written before the release store).
  const HandshakeMsg& remote() const { return remote_; }

  // --- liveness --------------------------------------------------------------
  void mark_dead() {
    dead_.store(true, std::memory_order_release);
    socket_.shutdown();
  }
  bool dead() const { return dead_.load(std::memory_order_acquire); }

  std::atomic<std::int64_t> last_recv_ms{0};   ///< steady-clock ms of last byte
  std::atomic<std::uint64_t> ping_nonce{0};    ///< outstanding ping (0 = none)
  std::atomic<std::int64_t> ping_sent_ms{0};

  /// Consecutive sync batches from this peer that added nothing to our tree
  /// (see P2pNode::handle_blocks).  Bounds locator-retry loops against a
  /// peer that keeps serving blocks we already have.
  std::atomic<std::uint32_t> sync_stalls{0};

  // --- per-peer traffic counters --------------------------------------------
  std::atomic<std::uint64_t> bytes_in{0};
  std::atomic<std::uint64_t> bytes_out{0};
  std::atomic<std::uint64_t> frames_in{0};
  std::atomic<std::uint64_t> frames_out{0};

  // --- inventory accounting --------------------------------------------------
  /// Record that the remote knows `id` (it announced it, or we sent it).
  /// Returns true if this was news — i.e. an announcement is worth sending.
  bool mark_known(const ledger::BlockHash& id);
  bool knows(const ledger::BlockHash& id) const;

  TcpSocket& socket() { return socket_; }
  FrameDecoder& decoder() { return decoder_; }

  /// Reader thread handle; managed by PeerManager.
  std::thread reader;

 private:
  const std::uint64_t session_id_;
  const bool outbound_;
  const int dial_index_;

  TcpSocket socket_;
  FrameDecoder decoder_;  // touched only by the reader thread

  std::mutex write_mu_;
  std::atomic<bool> ready_{false};
  std::atomic<bool> dead_{false};
  HandshakeMsg remote_;

  /// Hashes the remote is known to have.  Bounded: announcement suppression
  /// is an optimization, so on overflow the set is simply reset (a stale
  /// entry can only cost one redundant inv, never correctness).
  static constexpr std::size_t kMaxKnown = 1 << 16;
  mutable std::mutex known_mu_;
  std::unordered_set<ledger::BlockHash, Hash32Hasher> known_;
};

}  // namespace themis::p2p
