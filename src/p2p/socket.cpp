#include "p2p/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace themis::p2p {

namespace {

void set_ms_timeout(int fd, int option, int ms) {
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = (ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, option, &tv, sizeof(tv));
}

}  // namespace

TcpSocket& TcpSocket::operator=(TcpSocket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

TcpSocket TcpSocket::connect(const std::string& host, std::uint16_t port,
                             int timeout_ms) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    // Not a dotted quad: resolve (numeric-friendly; "localhost" included).
    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* result = nullptr;
    if (::getaddrinfo(host.c_str(), nullptr, &hints, &result) != 0 ||
        result == nullptr) {
      return TcpSocket();
    }
    addr.sin_addr = reinterpret_cast<sockaddr_in*>(result->ai_addr)->sin_addr;
    ::freeaddrinfo(result);
  }

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return TcpSocket();

  // Non-blocking connect so a dead address costs timeout_ms, not minutes.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  const int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    ::close(fd);
    return TcpSocket();
  }
  if (rc != 0) {
    pollfd pfd{fd, POLLOUT, 0};
    if (::poll(&pfd, 1, timeout_ms) <= 0) {
      ::close(fd);
      return TcpSocket();
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      ::close(fd);
      return TcpSocket();
    }
  }
  ::fcntl(fd, F_SETFL, flags);  // back to blocking
  return TcpSocket(fd);
}

bool TcpSocket::send_all(ByteSpan data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;  // hard error, peer gone, or send timeout — drop the peer
  }
  return true;
}

int TcpSocket::send_some(ByteSpan data) {
  const ssize_t n = ::send(fd_, data.data(), data.size(), MSG_NOSIGNAL);
  if (n >= 0) return static_cast<int>(n);
  if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) return -1;
  return -2;
}

int TcpSocket::recv_some(std::uint8_t* buf, std::size_t buf_len) {
  const ssize_t n = ::recv(fd_, buf, buf_len, 0);
  if (n > 0) return static_cast<int>(n);
  if (n == 0) return 0;
  if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) return -1;
  return -2;
}

void TcpSocket::shutdown() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void TcpSocket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void TcpSocket::set_timeouts(int send_ms, int recv_ms) {
  if (fd_ < 0) return;
  set_ms_timeout(fd_, SO_SNDTIMEO, send_ms);
  set_ms_timeout(fd_, SO_RCVTIMEO, recv_ms);
}

void TcpSocket::set_nonblocking(bool on) {
  if (fd_ < 0) return;
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags < 0) return;
  ::fcntl(fd_, F_SETFL, on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK));
}

void TcpSocket::set_nodelay(bool on) {
  if (fd_ < 0) return;
  const int v = on ? 1 : 0;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &v, sizeof(v));
}

bool TcpListener::listen(std::uint16_t port) {
  close();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 16) != 0) {
    ::close(fd);
    return false;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    return false;
  }
  port_ = ntohs(addr.sin_port);
  fd_.store(fd);
  return true;
}

std::optional<TcpSocket> TcpListener::accept() {
  for (;;) {
    const int fd = fd_.load();
    if (fd < 0) return std::nullopt;
    const int client = ::accept(fd, nullptr, nullptr);
    if (client >= 0) return TcpSocket(client);
    if (errno == EINTR) continue;
    return std::nullopt;  // interrupted from another thread, or fatal
  }
}

std::optional<TcpSocket> TcpListener::accept_nonblocking() {
  const int fd = fd_.load();
  if (fd < 0) return std::nullopt;
  const int client = ::accept4(fd, nullptr, nullptr, SOCK_NONBLOCK);
  if (client >= 0) return TcpSocket(client);
  return std::nullopt;  // EAGAIN (nothing pending), EINTR, or closed
}

void TcpListener::set_nonblocking(bool on) {
  const int fd = fd_.load();
  if (fd < 0) return;
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return;
  ::fcntl(fd, F_SETFL, on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK));
}

void TcpListener::interrupt() {
  const int fd = fd_.load();
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

void TcpListener::close() {
  const int fd = fd_.exchange(-1);
  if (fd >= 0) ::close(fd);
}

}  // namespace themis::p2p
