#include "p2p/frame.h"

#include "common/serialize.h"
#include "crypto/sha256.h"

namespace themis::p2p {

std::uint32_t frame_checksum(ByteSpan payload) {
  const Hash32 digest = crypto::sha256d(payload);
  return static_cast<std::uint32_t>(digest[0]) |
         (static_cast<std::uint32_t>(digest[1]) << 8) |
         (static_cast<std::uint32_t>(digest[2]) << 16) |
         (static_cast<std::uint32_t>(digest[3]) << 24);
}

Bytes encode_frame(std::uint32_t type, ByteSpan payload) {
  expects(payload.size() <= kMaxFramePayload, "frame payload too large");
  Writer w(payload.size() + kFrameOverhead);
  w.u32(kFrameMagic);
  w.u32(type);
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.raw(payload);
  w.u32(frame_checksum(payload));
  return w.take();
}

void FrameDecoder::feed(ByteSpan data) {
  // Compact before growing: the consumed prefix is dead weight and the buffer
  // would otherwise grow without bound on a long-lived connection.
  if (pos_ > 0 && pos_ == buf_.size()) {
    buf_.clear();
    pos_ = 0;
  } else if (pos_ > 4096) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), data.begin(), data.end());
}

void FrameDecoder::fail(const char* message) {
  poisoned_ = true;
  throw FrameError(message);
}

std::optional<Frame> FrameDecoder::poll() {
  if (poisoned_) fail("frame decoder poisoned by earlier error");
  const std::size_t available = buf_.size() - pos_;
  if (available < 12) return std::nullopt;

  Reader header(ByteSpan(buf_.data() + pos_, 12));
  const std::uint32_t magic = header.u32();
  const std::uint32_t type = header.u32();
  const std::uint32_t length = header.u32();
  if (magic != kFrameMagic) fail("bad frame magic");
  // Checked before any allocation or further buffering decision: a hostile
  // length prefix must not commit us to buffering gigabytes.
  if (length > kMaxFramePayload) fail("frame payload length exceeds maximum");
  if (available < kFrameOverhead + length) return std::nullopt;

  const ByteSpan payload(buf_.data() + pos_ + 12, length);
  Reader trailer(ByteSpan(buf_.data() + pos_ + 12 + length, 4));
  if (trailer.u32() != frame_checksum(payload)) fail("frame checksum mismatch");

  Frame frame;
  frame.type = type;
  frame.payload.assign(payload.begin(), payload.end());
  pos_ += kFrameOverhead + length;
  return frame;
}

}  // namespace themis::p2p
