#include "pbft/replica.h"

#include <cmath>

#include "common/check.h"
#include "common/serialize.h"
#include "consensus/wire.h"
#include "crypto/sha256.h"
#include "obs/observability.h"

namespace themis::pbft {

using consensus::kPbftCommit;
using consensus::kPbftPrePrepare;
using consensus::kPbftPrepare;
using consensus::kPbftViewChange;
using ledger::NodeId;

PbftReplica::PbftReplica(net::Simulation& sim, net::GossipNetwork& network,
                         PbftConfig config, NodeId id)
    : sim_(sim),
      network_(network),
      config_(config),
      id_(id),
      rng_(0x9bf7'0000ull + id) {
  expects(config_.n_nodes >= 4, "PBFT needs n >= 4 (f >= 1)");
  expects(id < config_.n_nodes, "replica id out of range");
}

std::size_t PbftReplica::pre_prepare_bytes() const {
  return config_.header_bytes +
         static_cast<std::size_t>(std::ceil(config_.compact_bytes_per_tx *
                                            config_.batch_size));
}

void PbftReplica::start() {
  expects(!started_, "replica already started");
  started_ = true;
  network_.set_handler(id_, [this](net::PeerId, const net::Message& msg) {
    on_message(msg);
  });
  enter_sequence(1);
}

void PbftReplica::on_message(const net::Message& msg) {
  // CPU model: verify signed protocol messages serially.
  const SimTime done = std::max(sim_.now(), cpu_free_) + config_.verify_delay;
  cpu_free_ = done;
  if (config_.verify_delay == SimTime::zero() && done == sim_.now()) {
    process(msg);
    return;
  }
  sim_.schedule_at(done, [this, msg] { process(msg); });
}

void PbftReplica::process(const net::Message& msg) {
  switch (msg.type) {
    case kPbftPrePrepare:
      if (const auto* m = std::any_cast<PrePrepare>(&msg.payload)) {
        handle_pre_prepare(*m);
      }
      break;
    case kPbftPrepare:
      if (const auto* m = std::any_cast<Prepare>(&msg.payload)) handle_prepare(*m);
      break;
    case kPbftCommit:
      if (const auto* m = std::any_cast<Commit>(&msg.payload)) handle_commit(*m);
      break;
    case kPbftViewChange:
      if (const auto* m = std::any_cast<ViewChange>(&msg.payload)) {
        handle_view_change(*m);
      }
      break;
    default:
      break;
  }
}

void PbftReplica::broadcast_to_all(std::uint32_t type, std::size_t size,
                                   std::any payload) {
  for (NodeId to = 0; to < config_.n_nodes; ++to) {
    if (to == id_) continue;
    network_.send(id_, to, type, size, payload);
  }
}

void PbftReplica::propose_if_leader() {
  const std::uint64_t seq = active_seq();
  if (leader_of(seq, view_, config_.n_nodes) != id_) return;
  if (suppressed_) return;  // attacked producer: no pre-prepare goes out

  PrePrepare msg;
  msg.view = view_;
  msg.seq = seq;
  msg.tx_count = config_.batch_size;
  msg.leader = id_;
  Writer w;
  w.u64(view_);
  w.u64(seq);
  w.u32(id_);
  msg.digest = crypto::sha256(w.buffer());

  broadcast_to_all(kPbftPrePrepare, pre_prepare_bytes(), msg);
  handle_pre_prepare(msg);  // the leader pre-prepares locally
}

void PbftReplica::handle_pre_prepare(const PrePrepare& msg) {
  if (msg.view > view_) enter_view(msg.view);  // new-view adoption
  if (msg.view != view_) return;
  if (msg.seq <= committed_seq_) return;
  if (msg.leader != leader_of(msg.seq, view_, config_.n_nodes)) return;

  Slot& slot = slots_[msg.seq];
  if (slot.pre_prepared) return;
  slot.pre_prepared = true;
  slot.digest = msg.digest;
  slot.tx_count = msg.tx_count;
  slot.leader = msg.leader;

  if (!slot.sent_prepare) {
    slot.sent_prepare = true;
    slot.prepares.insert(id_);
    Prepare p{view_, msg.seq, msg.digest, id_};
    broadcast_to_all(kPbftPrepare, config_.phase_msg_bytes, p);
  }
  maybe_send_commit(msg.seq, slot);
  maybe_execute(msg.seq, slot);
}

void PbftReplica::handle_prepare(const Prepare& msg) {
  if (msg.view != view_ || msg.seq <= committed_seq_) return;
  Slot& slot = slots_[msg.seq];
  slot.prepares.insert(msg.from);
  maybe_send_commit(msg.seq, slot);
}

void PbftReplica::maybe_send_commit(std::uint64_t seq, Slot& slot) {
  if (slot.sent_commit || !slot.pre_prepared) return;
  if (slot.prepares.size() < quorum()) return;
  slot.sent_commit = true;
  slot.commits.insert(id_);
  Commit c{view_, seq, slot.digest, id_};
  broadcast_to_all(kPbftCommit, config_.phase_msg_bytes, c);
  maybe_execute(seq, slot);
}

void PbftReplica::handle_commit(const Commit& msg) {
  if (msg.seq <= committed_seq_) return;
  // Commit certificates (2f+1 commits) are accepted across views: a replica
  // that missed earlier phases adopts the decided value (state transfer).
  Slot& slot = slots_[msg.seq];
  slot.commits.insert(msg.from);
  maybe_execute(msg.seq, slot);
}

void PbftReplica::maybe_execute(std::uint64_t seq, Slot& slot) {
  if (slot.committed || executing_) return;
  if (seq <= committed_seq_) return;
  if (slot.commits.size() < quorum()) return;
  // Execution is sequential in the common case (seq == committed + 1).  A
  // certificate for a later sequence is proof the network decided everything
  // up to it; adopting it is the state-transfer step that real PBFT performs
  // with checkpoints, so a healed laggard catches up here.
  slot.committed = true;
  executing_ = true;
  // Capture the decided values now: a view change during execution clears
  // per-sequence state, but the decision itself is final.
  const std::uint64_t skipped = seq - committed_seq_ - 1;
  const std::uint32_t txs =
      (slot.pre_prepared ? slot.tx_count : config_.batch_size) +
      static_cast<std::uint32_t>(skipped) * config_.batch_size;
  const ledger::NodeId producer =
      slot.pre_prepared ? slot.leader : leader_of(seq, view_, config_.n_nodes);
  const SimTime exec_time =
      SimTime::nanos(config_.exec_delay_per_tx.count_nanos() *
                     static_cast<std::int64_t>(txs));
  sim_.schedule_after(exec_time, [this, seq, txs, producer] {
    finish_execution(seq, txs, producer);
  });
}

void PbftReplica::finish_execution(std::uint64_t seq, std::uint32_t txs,
                                   ledger::NodeId producer) {
  committed_seq_ = seq;
  committed_txs_ += txs;
  committed_producers_[seq] = producer;
  if (obs::Observability* o = sim_.obs();
      o != nullptr && o->tracer.enabled()) {
    o->tracer.emit(sim_.now(), "pbft_commit",
                   {obs::Field::u64("node", id_), obs::Field::u64("seq", seq),
                    obs::Field::u64("leader", producer),
                    obs::Field::u64("txs", txs),
                    obs::Field::u64("view", view_)});
  }
  slots_.erase(seq);
  executing_ = false;
  consecutive_timeouts_ = 0;
  enter_sequence(seq + 1);

  // A commit certificate for a later sequence may already be buffered
  // (slots_ is ordered; executing_ stops the scan after the first hit).
  for (auto& [pending_seq, pending_slot] : slots_) {
    if (executing_) break;
    maybe_execute(pending_seq, pending_slot);
  }
}

void PbftReplica::enter_sequence(std::uint64_t seq) {
  ensures(seq == committed_seq_ + 1, "the active sequence follows the commit");
  arm_timer();
  propose_if_leader();
}

void PbftReplica::arm_timer() {
  if (timer_event_ != 0) sim_.cancel(timer_event_);
  const std::uint64_t generation = ++timer_generation_;
  const double backoff =
      std::pow(config_.timeout_backoff,
               static_cast<double>(std::min<std::uint32_t>(consecutive_timeouts_, 16)));
  const SimTime timeout = SimTime::seconds(
      config_.base_timeout.to_seconds() * backoff);
  timer_event_ =
      sim_.schedule_after(timeout, [this, generation] { on_timeout(generation); });
}

void PbftReplica::on_timeout(std::uint64_t generation) {
  if (generation != timer_generation_) return;
  timer_event_ = 0;
  ++consecutive_timeouts_;

  const std::uint64_t target_view = view_ + 1;
  ViewChange vc{target_view, committed_seq_, id_};
  broadcast_to_all(kPbftViewChange, config_.view_change_msg_bytes, vc);
  auto& votes = view_change_votes_[target_view];
  votes.insert(id_);
  if (votes.size() >= quorum()) {
    enter_view(target_view);
  } else {
    arm_timer();  // keep waiting; retry with backoff
  }
}

void PbftReplica::handle_view_change(const ViewChange& msg) {
  if (msg.new_view <= view_) return;
  auto& votes = view_change_votes_[msg.new_view];
  votes.insert(msg.from);
  if (votes.size() >= quorum()) enter_view(msg.new_view);
}

void PbftReplica::enter_view(std::uint64_t new_view) {
  if (new_view <= view_) return;
  if (obs::Observability* o = sim_.obs();
      o != nullptr && o->tracer.enabled()) {
    o->tracer.emit(sim_.now(), "pbft_view_change",
                   {obs::Field::u64("node", id_),
                    obs::Field::u64("old_view", view_),
                    obs::Field::u64("view", new_view),
                    obs::Field::u64("seq", committed_seq_ + 1)});
  }
  view_ = new_view;
  ++view_changes_;
  // Uncommitted per-sequence state is view-local; drop it so stale quorums
  // cannot mix across views.  (Commit certificates were already applied.)
  slots_.clear();
  std::erase_if(view_change_votes_,
                [new_view](const auto& kv) { return kv.first <= new_view; });
  arm_timer();
  propose_if_leader();
}

}  // namespace themis::pbft
