#include "pbft/cluster.h"

#include <algorithm>

#include "common/check.h"

namespace themis::pbft {

PbftCluster::PbftCluster(net::Simulation& sim, net::GossipNetwork& network,
                         PbftConfig config) {
  expects(network.n_nodes() == config.n_nodes,
          "network size must match the replica count");
  replicas_.reserve(config.n_nodes);
  for (std::size_t i = 0; i < config.n_nodes; ++i) {
    replicas_.push_back(std::make_unique<PbftReplica>(
        sim, network, config, static_cast<ledger::NodeId>(i)));
  }
}

void PbftCluster::start() {
  for (auto& r : replicas_) r->start();
}

void PbftCluster::suppress_producers(std::size_t count) {
  expects(count <= replicas_.size(), "cannot suppress more nodes than exist");
  for (std::size_t i = 0; i < count; ++i) replicas_[i]->set_suppressed(true);
}

std::uint64_t PbftCluster::max_committed_seq() const {
  std::uint64_t best = 0;
  for (const auto& r : replicas_) best = std::max(best, r->committed_seq());
  return best;
}

std::uint64_t PbftCluster::max_committed_txs() const {
  std::uint64_t best = 0;
  for (const auto& r : replicas_) best = std::max(best, r->committed_txs());
  return best;
}

std::uint64_t PbftCluster::total_view_changes() const {
  std::uint64_t total = 0;
  for (const auto& r : replicas_) total += r->view_changes();
  return total;
}

double PbftCluster::tps(SimTime elapsed) const {
  if (elapsed <= SimTime::zero()) return 0.0;
  return static_cast<double>(max_committed_txs()) / elapsed.to_seconds();
}

}  // namespace themis::pbft
