// A PBFT replica (Castro-Liskov) on the simulated network.
//
// The baseline the paper compares against (§VII-B): round-robin leadership
// (leader of sequence s in view v is (s + v) mod n — this is what gives PBFT
// its perfect Equality, Fig. 1b), three phases of direct point-to-point
// messages (pre-prepare / prepare / commit with 2f+1 quorums), and a view
// change driven by a timeout (what collapses TPS under producer attacks,
// Fig. 7, and at large scale, Fig. 6).
//
// Performance model:
//   * Every send is serialized on the sender's 20 Mbps uplink (the leader's
//     n-1 pre-prepare transfers are the classic bandwidth bottleneck).
//   * Every received protocol message costs `verify_delay` CPU, serialized
//     per replica (signature verification), so prepare/commit ingestion is
//     O(n) per round per replica.
//   * Committing a batch costs `exec_delay_per_tx * batch` before the next
//     sequence starts.
//
// Simplifications, documented for honesty: transactions are assumed to be
// pre-disseminated to all replicas by clients (the mempool model), so the
// pre-prepare carries an ordering (compact) payload of ~6 B per transaction;
// checkpoints/garbage collection and state transfer are replaced by commit
// certificates — a replica that sees 2f+1 commits for a sequence adopts it
// even if it missed earlier phases.
#pragma once

#include <cstdint>
#include <map>
#include <set>

#include "common/rng.h"
#include "net/gossip.h"
#include "pbft/messages.h"

namespace themis::pbft {

struct PbftConfig {
  std::size_t n_nodes = 4;
  std::uint32_t batch_size = 4096;     ///< transactions per block
  double compact_bytes_per_tx = 6.0;   ///< pre-prepare ordering payload
  std::size_t header_bytes = 192;      ///< fixed part of the pre-prepare
  std::size_t phase_msg_bytes = 128;   ///< prepare / commit wire size (§VI-C)
  std::size_t view_change_msg_bytes = 256;
  SimTime base_timeout = SimTime::seconds(5.0);
  /// Timeout multiplier per consecutive view change on the same sequence.
  double timeout_backoff = 1.5;
  SimTime verify_delay = SimTime::millis(8);       ///< per received message
  SimTime exec_delay_per_tx = SimTime::micros(500);///< block execution
};

class PbftReplica {
 public:
  PbftReplica(net::Simulation& sim, net::GossipNetwork& network,
              PbftConfig config, ledger::NodeId id);

  /// Install the network handler and, if leader of the first sequence, start
  /// proposing.
  void start();

  /// §VII-A vulnerable node: a suppressed replica never emits pre-prepares
  /// when it is the leader (its block production is attacked), but still
  /// participates in prepare/commit/view-change.
  void set_suppressed(bool suppressed) { suppressed_ = suppressed; }

  ledger::NodeId id() const { return id_; }
  std::uint64_t view() const { return view_; }
  std::uint64_t committed_seq() const { return committed_seq_; }
  std::uint64_t committed_txs() const { return committed_txs_; }
  std::uint64_t view_changes() const { return view_changes_; }
  /// Producer (leader) of each committed sequence, 1-based seq -> node id.
  const std::map<std::uint64_t, ledger::NodeId>& committed_producers() const {
    return committed_producers_;
  }

  /// Leader of sequence `seq` in view `view` (round-robin, §VII / Fig. 1b).
  static ledger::NodeId leader_of(std::uint64_t seq, std::uint64_t view,
                                  std::size_t n_nodes) {
    return static_cast<ledger::NodeId>((seq + view) % n_nodes);
  }

  std::size_t quorum() const { return 2 * fault_bound() + 1; }
  std::size_t fault_bound() const { return (config_.n_nodes - 1) / 3; }

 private:
  struct Slot {
    bool pre_prepared = false;
    bool sent_prepare = false;
    bool sent_commit = false;
    bool committed = false;
    Hash32 digest{};
    std::uint32_t tx_count = 0;
    ledger::NodeId leader = 0;
    std::set<ledger::NodeId> prepares;
    std::set<ledger::NodeId> commits;
  };

  void on_message(const net::Message& msg);
  void process(const net::Message& msg);

  void handle_pre_prepare(const PrePrepare& msg);
  void handle_prepare(const Prepare& msg);
  void handle_commit(const Commit& msg);
  void handle_view_change(const ViewChange& msg);

  void propose_if_leader();
  void maybe_send_commit(std::uint64_t seq, Slot& slot);
  void maybe_execute(std::uint64_t seq, Slot& slot);
  void finish_execution(std::uint64_t seq, std::uint32_t txs,
                        ledger::NodeId producer);
  void enter_sequence(std::uint64_t seq);
  void arm_timer();
  void on_timeout(std::uint64_t generation);
  void enter_view(std::uint64_t new_view);
  void broadcast_to_all(std::uint32_t type, std::size_t size, std::any payload);

  std::uint64_t active_seq() const { return committed_seq_ + 1; }
  std::size_t pre_prepare_bytes() const;

  net::Simulation& sim_;
  net::GossipNetwork& network_;
  PbftConfig config_;
  ledger::NodeId id_;
  Rng rng_;

  std::uint64_t view_ = 0;
  std::uint64_t committed_seq_ = 0;
  std::uint64_t committed_txs_ = 0;
  std::uint64_t view_changes_ = 0;
  bool executing_ = false;
  bool suppressed_ = false;
  bool started_ = false;

  std::map<std::uint64_t, Slot> slots_;  // keyed by sequence number
  std::map<std::uint64_t, std::set<ledger::NodeId>> view_change_votes_;
  std::map<std::uint64_t, ledger::NodeId> committed_producers_;

  // CPU model: received messages are verified serially.
  SimTime cpu_free_;

  // Timeout machinery.
  net::EventId timer_event_ = 0;
  std::uint64_t timer_generation_ = 0;
  std::uint32_t consecutive_timeouts_ = 0;
};

}  // namespace themis::pbft
