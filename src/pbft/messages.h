// PBFT wire messages (Castro-Liskov three-phase protocol).
//
// Prepare/commit/view-change messages carry a fixed wire size (the digest,
// ids and a signature, §VI-C budgets ~128 B); the pre-prepare additionally
// carries the proposed batch.  Like the block gossip path, payloads travel as
// structs and sizes are accounted explicitly by the link model.
#pragma once

#include <cstdint>

#include "common/bytes.h"
#include "ledger/types.h"

namespace themis::pbft {

struct PrePrepare {
  std::uint64_t view = 0;
  std::uint64_t seq = 0;
  Hash32 digest{};           ///< batch digest the replicas sign
  std::uint32_t tx_count = 0;
  ledger::NodeId leader = 0;
};

struct Prepare {
  std::uint64_t view = 0;
  std::uint64_t seq = 0;
  Hash32 digest{};
  ledger::NodeId from = 0;
};

struct Commit {
  std::uint64_t view = 0;
  std::uint64_t seq = 0;
  Hash32 digest{};
  ledger::NodeId from = 0;
};

struct ViewChange {
  std::uint64_t new_view = 0;
  std::uint64_t last_committed = 0;
  ledger::NodeId from = 0;
};

}  // namespace themis::pbft
