// Convenience wrapper wiring n PBFT replicas onto one simulated network.
#pragma once

#include <memory>
#include <vector>

#include "pbft/replica.h"

namespace themis::pbft {

class PbftCluster {
 public:
  PbftCluster(net::Simulation& sim, net::GossipNetwork& network, PbftConfig config);

  /// Start every replica (leader of sequence 1 begins proposing).
  void start();

  /// Mark the first `count` replicas as suppressed producers (§VII-A).
  void suppress_producers(std::size_t count);

  PbftReplica& replica(std::size_t i) { return *replicas_[i]; }
  const PbftReplica& replica(std::size_t i) const { return *replicas_[i]; }
  std::size_t size() const { return replicas_.size(); }

  /// Highest sequence committed by any replica (a commit certificate exists).
  std::uint64_t max_committed_seq() const;
  /// Transactions in that prefix.
  std::uint64_t max_committed_txs() const;
  /// Total view changes across replicas (instability indicator).
  std::uint64_t total_view_changes() const;

  /// Committed transactions per simulated second over `elapsed`.
  double tps(SimTime elapsed) const;

 private:
  std::vector<std::unique_ptr<PbftReplica>> replicas_;
};

}  // namespace themis::pbft
