#include "core/themis_node.h"

namespace themis::core {

std::string_view to_string(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kThemis: return "Themis";
    case Algorithm::kThemisLite: return "Themis-Lite";
    case Algorithm::kPowH: return "PoW-H";
    case Algorithm::kPbft: return "PBFT";
  }
  return "unknown";
}

std::unique_ptr<consensus::PowNode> make_themis_node(
    net::Simulation& sim, net::GossipNetwork& network,
    consensus::NodeConfig node_config, AdaptiveConfig adaptive_config,
    std::shared_ptr<const consensus::KeyRegistry> registry) {
  return std::make_unique<consensus::PowNode>(
      sim, network, node_config,
      std::make_shared<GeostRule>(node_config.n_nodes),
      std::make_shared<AdaptiveDifficulty>(adaptive_config), std::move(registry));
}

std::unique_ptr<consensus::PowNode> make_themis_lite_node(
    net::Simulation& sim, net::GossipNetwork& network,
    consensus::NodeConfig node_config, AdaptiveConfig adaptive_config,
    std::shared_ptr<const consensus::KeyRegistry> registry) {
  return std::make_unique<consensus::PowNode>(
      sim, network, node_config, std::make_shared<consensus::GhostRule>(),
      std::make_shared<AdaptiveDifficulty>(adaptive_config), std::move(registry));
}

std::unique_ptr<consensus::PowNode> make_powh_node(
    net::Simulation& sim, net::GossipNetwork& network,
    consensus::NodeConfig node_config, AdaptiveConfig adaptive_config,
    std::shared_ptr<const consensus::KeyRegistry> registry) {
  adaptive_config.enable_multiples = false;  // Bitcoin-style: retarget only
  return std::make_unique<consensus::PowNode>(
      sim, network, node_config, std::make_shared<consensus::GhostRule>(),
      std::make_shared<AdaptiveDifficulty>(adaptive_config), std::move(registry));
}

}  // namespace themis::core
