// Proof-of-X alternatives (§VI-E).
//
// The paper argues Themis' election mechanism generalizes beyond hashing:
// any resource that scales a per-node puzzle target works.  This header
// provides the Proof-of-Stake instantiation the paper sketches:
//
//   * StakeDifficulty — plain PoS (PPCoin-style): a node's target scales
//     with its coin-day weight, so the block-producing probability is its
//     stake share.  Like PoW, stake concentration makes the producer
//     predictable and unequal.
//   * ThemisStakeDifficulty — the paper's modification: the coin-day
//     calculation is renormalized exactly like Eq. 6 (the stake-weighted
//     analogue of the self-adaptive multiple), restoring Equality and
//     Unpredictability while keeping PoS economics.
//
// Both implement consensus::DifficultyPolicy, so the same PowNode runs them:
// with SimMiner, "hash rate" plays the role of stake-scanning rate, which is
// uniform per node — the policies fold the stake into the difficulty instead.
#pragma once

#include <memory>
#include <vector>

#include "consensus/difficulty.h"
#include "core/adaptive_difficulty.h"

namespace themis::core {

/// Plain PoS: D_i = D_ref * (total_stake / stake_i) / n, so a node's
/// block-producing rate share equals its stake share and the network-wide
/// expected interval matches a reference difficulty calibrated for one
/// "round" per I_0.
class StakeDifficulty final : public consensus::DifficultyPolicy {
 public:
  /// `reference_difficulty` is the difficulty a node with exactly the mean
  /// stake would mine at (calibrate to I_0 * n * scan_rate).
  StakeDifficulty(std::vector<double> stakes, double reference_difficulty);

  double difficulty_for(const ledger::BlockTree&, const ledger::BlockHash&,
                        ledger::NodeId producer) override;
  std::uint32_t epoch_for(const ledger::BlockTree&,
                          const ledger::BlockHash&) override {
    return 0;
  }

  const std::vector<double>& stakes() const { return stakes_; }
  /// Per-round block-producing probability implied by the stakes (Eq. 3
  /// analogue): p_i = stake_i / total.
  std::vector<double> probabilities() const;

 private:
  std::vector<double> stakes_;
  double reference_difficulty_;
  double total_stake_;
};

/// Themis-PoS: the adaptive multiple mechanism applied on top of stake
/// weights.  The effective stake of node i in epoch e is stake_i / m_i^e with
/// m updated per Eq. 6 from main-chain block counts — the "modified coinDay
/// calculation" of §VI-E.
class ThemisStakeDifficulty final : public consensus::DifficultyPolicy {
 public:
  ThemisStakeDifficulty(std::vector<double> stakes, AdaptiveConfig config);

  double difficulty_for(const ledger::BlockTree& tree,
                        const ledger::BlockHash& parent,
                        ledger::NodeId producer) override;
  std::uint32_t epoch_for(const ledger::BlockTree& tree,
                          const ledger::BlockHash& parent) override;

  /// Effective per-round probabilities in the epoch governing blocks that
  /// extend `parent` (for σ_p² measurements).
  std::vector<double> probabilities(const ledger::BlockTree& tree,
                                    const ledger::BlockHash& parent);

 private:
  std::vector<double> stakes_;
  double mean_stake_;
  AdaptiveDifficulty adaptive_;
};

}  // namespace themis::core
