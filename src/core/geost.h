// GEOST — the Greedy most-Equal-Observed Sub-Tree rule (§V, Algorithm 1).
//
// When several blocks coexist at one height, GEOST prefers, in order:
//   1. the child whose subtree contains the most blocks (the sub-chain
//      "first received by most nodes" accumulates weight fastest);
//   2. on a weight tie, the child whose subtree has the lowest variance of
//      block-producing frequency σ_f² (the most equal sub-chain);
//   3. on a variance tie, the child received first.
//
// Rule 2 is what distinguishes GEOST from GHOST and is why coexisting
// sub-trees finalize faster (§V-B, Fig. 2): a single new block almost always
// perturbs σ_f² even when it leaves the weights tied.
#pragma once

#include "consensus/forkchoice.h"

namespace themis::core {

/// Variance of block-producing frequency within the subtree rooted at `root`
/// (Eq. 1 applied to the subtree): f_i = (blocks by node i in subtree) /
/// (subtree size), variance taken over all `n_nodes` consensus nodes.
/// Amortized O(1): served from the tree's incrementally maintained equality
/// statistics (bit-identical to the retained DFS oracle).
double subtree_equality_variance(const ledger::BlockTree& tree,
                                 const ledger::BlockHash& root,
                                 std::size_t n_nodes);

class GeostRule final : public consensus::ForkChoiceRule {
 public:
  /// `n_nodes` is the consensus-set size the frequency variance ranges over.
  explicit GeostRule(std::size_t n_nodes);

  std::string_view name() const override { return "geost"; }

  /// Equality priority of a subtree: higher is preferred.  Exposed for tests
  /// and for the Fig. 2 walkthrough bench.
  struct Priority {
    std::uint64_t weight = 0;       ///< subtree block count (more is better)
    double equality_variance = 0;   ///< σ_f² of the subtree (less is better)
    std::uint64_t receipt_seq = 0;  ///< local arrival order (less is better)

    /// True when *this is preferred over `rhs` under GEOST.
    bool preferred_over(const Priority& rhs) const;
  };
  Priority priority_of(const ledger::BlockTree& tree,
                       const ledger::BlockHash& root) const;

 protected:
  ledger::BlockHash pick_child(
      const ledger::BlockTree& tree,
      const std::vector<ledger::BlockHash>& children) const override;

 private:
  std::size_t n_nodes_;
};

}  // namespace themis::core
