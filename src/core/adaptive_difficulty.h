// The self-adaptive block-producing difficulty adjustment mechanism (§IV).
//
// Every Δ main-chain blocks, each node's difficulty multiple is updated from
// the number of blocks it landed in that epoch (Eq. 6):
//
//     m_i^{e+1} = max( (n · q_i^e / Δ) · m_i^e , 1 ),    m_i^0 = 1
//
// which is the MLE-driven renormalization of Eq. 3-5: q_i^e/Δ is an unbiased
// estimate of node i's block-producing probability, so dividing its effective
// power h_i/m_i by n·q_i^e/Δ pushes every probability toward 1/n.
//
// The basic difficulty D_base^e (Eq. 7) anchors the total work: it starts at
// I_0 · n · H_0 and is retargeted each epoch by the ratio of the expected to
// the observed block interval (§IV-B), clamped for stability.  A node's
// difficulty in epoch e is D_i^e = m_i^e · D_base^e.
//
// Everything is a pure function of the parent chain: the table for epoch e is
// derived from the chain segment ending at the epoch-boundary block (height
// e·Δ), so any two nodes that agree on that block agree on every difficulty —
// no communication needed for verification (§IV-A).  Tables are cached per
// boundary block, which also makes reorgs across a boundary consistent: a
// block is always validated against the table of the chain it extends.
#pragma once

#include <unordered_map>
#include <vector>

#include "consensus/difficulty.h"

namespace themis::core {

struct AdaptiveConfig {
  std::size_t n_nodes = 0;
  /// Δ: blocks per difficulty-adjustment epoch.  The paper recommends
  /// Δ = β·n with β in [7, 11] (§VII-D, Fig. 9).
  std::uint64_t delta = 0;
  /// I_0: expected block interval in seconds (Eq. 7).
  double expected_interval_s = 4.0;
  /// H_0: the minimum per-node hash rate the consortium requires (Eq. 7).
  double h0 = 1.0;
  /// Override for D_base^0; 0 means use Eq. 7's I_0 · n · H_0.
  double initial_base_difficulty = 0.0;
  /// Per-epoch retarget factor is clamped to [1/clamp, clamp].  The paper's
  /// §IV-B adjustment is unclamped; a loose default keeps a safety bound
  /// while letting D_base track the equilibrium (the multiples migrate total
  /// effective power toward n*H_0 within a few epochs, and a tight clamp
  /// would lag that with over-long block intervals).
  double retarget_clamp = 16.0;
  /// Disable the per-epoch D_base retarget (ablation).
  bool enable_retarget = true;
  /// Disable the per-node multiples (m_i = 1 forever): what remains is a
  /// plain Bitcoin-style global interval retarget — exactly the PoW-H
  /// baseline's difficulty behaviour ("PoW-H improves the Bitcoin PoW
  /// algorithm", §VII-B).
  bool enable_multiples = true;
  /// Disable the m_i >= 1 floor of Eq. 6 (ablation; the paper argues the
  /// floor is needed so idle nodes cannot drive difficulty arbitrarily low).
  bool enforce_multiple_floor = true;
};

class AdaptiveDifficulty final : public consensus::DifficultyPolicy {
 public:
  explicit AdaptiveDifficulty(AdaptiveConfig config);

  /// Per-epoch state shared by mining and verification.
  struct EpochTable {
    std::uint32_t epoch = 0;
    std::vector<double> multiples;  ///< m_i^e for every node
    double base_difficulty = 1.0;   ///< D_base^e
  };

  double difficulty_for(const ledger::BlockTree& tree,
                        const ledger::BlockHash& parent,
                        ledger::NodeId producer) override;
  std::uint32_t epoch_for(const ledger::BlockTree& tree,
                          const ledger::BlockHash& parent) override;

  /// The full table governing blocks that extend `parent` (exposed so the
  /// experiment harness can compute σ_p², Eq. 2, from m_i^e and the true
  /// hash rates).
  const EpochTable& table_for(const ledger::BlockTree& tree,
                              const ledger::BlockHash& parent);

  const AdaptiveConfig& config() const { return config_; }

  /// D_base^0 per Eq. 7 (or the configured override).
  double initial_base_difficulty() const;

  /// §VI-C: per-epoch bookkeeping is one float (m_i) and one int (q_i) per
  /// node — 8n bytes network-wide per epoch.
  std::size_t storage_overhead_bytes_per_epoch() const {
    return 8 * config_.n_nodes;
  }

 private:
  /// Ancestor of `block` at the last epoch boundary (height floor(h/Δ)·Δ);
  /// memoized per block.
  ledger::BlockHash boundary_of(const ledger::BlockTree& tree,
                                const ledger::BlockHash& block);
  const EpochTable& table_for_boundary(const ledger::BlockTree& tree,
                                       const ledger::BlockHash& boundary);

  AdaptiveConfig config_;
  std::unordered_map<ledger::BlockHash, ledger::BlockHash, Hash32Hasher>
      boundary_cache_;
  std::unordered_map<ledger::BlockHash, EpochTable, Hash32Hasher> table_cache_;
  // Two-entry memo for table_for(): each block arrival triggers a validation
  // lookup against the block's parent and a mining re-arm against the new
  // head — two keys that alternate, so one slot per pattern avoids thrashing.
  // The pointers stay valid across rehashes (unordered_map nodes are
  // stable), and the boundary of a given parent hash is tree-independent
  // (the parent chain is content-addressed), so keying on the hash alone is
  // sound.
  ledger::BlockHash memo_parent_[2] = {};
  const EpochTable* memo_table_[2] = {nullptr, nullptr};
  unsigned memo_next_ = 0;
};

}  // namespace themis::core
