#include "core/geost.h"

#include "common/check.h"

namespace themis::core {

using ledger::BlockHash;
using ledger::BlockTree;

double subtree_equality_variance(const BlockTree& tree, const BlockHash& root,
                                 std::size_t n_nodes) {
  // The tree maintains exact per-producer counts incrementally and caches
  // the variance double; the value is bit-identical to the historical
  // DFS + frequency_variance computation (ledger::NaiveTreeAggregates).
  return tree.subtree_equality_variance(root, n_nodes);
}

GeostRule::GeostRule(std::size_t n_nodes) : n_nodes_(n_nodes) {
  expects(n_nodes >= 1, "GEOST needs the consensus-set size");
}

bool GeostRule::Priority::preferred_over(const Priority& rhs) const {
  if (weight != rhs.weight) return weight > rhs.weight;
  if (equality_variance != rhs.equality_variance) {
    return equality_variance < rhs.equality_variance;
  }
  return receipt_seq < rhs.receipt_seq;
}

GeostRule::Priority GeostRule::priority_of(const BlockTree& tree,
                                           const BlockHash& root) const {
  Priority p;
  p.weight = tree.subtree_size(root);
  p.equality_variance = subtree_equality_variance(tree, root, n_nodes_);
  p.receipt_seq = tree.receipt_seq(root);
  return p;
}

BlockHash GeostRule::pick_child(const BlockTree& tree,
                                const std::vector<BlockHash>& children) const {
  // Same decision as comparing priority_of() for every child, but σ_f² —
  // Θ(n_nodes) when its cache is stale — is evaluated only on an actual
  // weight tie, which the weight-first ordering makes rare once one subtree
  // pulls ahead.
  BlockHash best = children[0];
  std::uint64_t best_weight = tree.subtree_size(best);
  bool have_best_variance = false;
  double best_variance = 0.0;
  for (std::size_t i = 1; i < children.size(); ++i) {
    const BlockHash& candidate = children[i];
    const std::uint64_t weight = tree.subtree_size(candidate);
    if (weight < best_weight) continue;
    if (weight > best_weight) {
      best = candidate;
      best_weight = weight;
      have_best_variance = false;
      continue;
    }
    if (!have_best_variance) {
      best_variance = subtree_equality_variance(tree, best, n_nodes_);
      have_best_variance = true;
    }
    const double variance = subtree_equality_variance(tree, candidate, n_nodes_);
    if (variance < best_variance ||
        (variance == best_variance &&
         tree.receipt_seq(candidate) < tree.receipt_seq(best))) {
      best = candidate;
      best_variance = variance;
    }
  }
  return best;
}

}  // namespace themis::core
