#include "core/geost.h"

#include "common/check.h"
#include "common/stats.h"

namespace themis::core {

using ledger::BlockHash;
using ledger::BlockTree;

double subtree_equality_variance(const BlockTree& tree, const BlockHash& root,
                                 std::size_t n_nodes) {
  const std::vector<std::uint64_t> counts =
      tree.subtree_producer_counts(root, n_nodes);
  std::uint64_t total = 0;
  for (const std::uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  return frequency_variance(counts, static_cast<double>(total));
}

GeostRule::GeostRule(std::size_t n_nodes) : n_nodes_(n_nodes) {
  expects(n_nodes >= 1, "GEOST needs the consensus-set size");
}

bool GeostRule::Priority::preferred_over(const Priority& rhs) const {
  if (weight != rhs.weight) return weight > rhs.weight;
  if (equality_variance != rhs.equality_variance) {
    return equality_variance < rhs.equality_variance;
  }
  return receipt_seq < rhs.receipt_seq;
}

GeostRule::Priority GeostRule::priority_of(const BlockTree& tree,
                                           const BlockHash& root) const {
  Priority p;
  p.weight = tree.subtree_size(root);
  p.equality_variance = subtree_equality_variance(tree, root, n_nodes_);
  p.receipt_seq = tree.receipt_seq(root);
  return p;
}

BlockHash GeostRule::pick_child(const BlockTree& tree,
                                const std::vector<BlockHash>& children) const {
  BlockHash best = children[0];
  Priority best_priority = priority_of(tree, best);
  for (std::size_t i = 1; i < children.size(); ++i) {
    const Priority candidate = priority_of(tree, children[i]);
    if (candidate.preferred_over(best_priority)) {
      best = children[i];
      best_priority = candidate;
    }
  }
  return best;
}

}  // namespace themis::core
