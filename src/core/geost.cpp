#include "core/geost.h"

#include "common/check.h"

namespace themis::core {

using ledger::BlockHash;
using ledger::BlockTree;

double subtree_equality_variance(const BlockTree& tree, const BlockHash& root,
                                 std::size_t n_nodes) {
  // The tree maintains exact per-producer counts incrementally and caches
  // the variance double; the value is bit-identical to the historical
  // DFS + frequency_variance computation (ledger::NaiveTreeAggregates).
  return tree.subtree_equality_variance(root, n_nodes);
}

GeostRule::GeostRule(std::size_t n_nodes) : n_nodes_(n_nodes) {
  expects(n_nodes >= 1, "GEOST needs the consensus-set size");
}

bool GeostRule::Priority::preferred_over(const Priority& rhs) const {
  if (weight != rhs.weight) return weight > rhs.weight;
  if (equality_variance != rhs.equality_variance) {
    return equality_variance < rhs.equality_variance;
  }
  return receipt_seq < rhs.receipt_seq;
}

GeostRule::Priority GeostRule::priority_of(const BlockTree& tree,
                                           const BlockHash& root) const {
  Priority p;
  p.weight = tree.subtree_size(root);
  p.equality_variance = subtree_equality_variance(tree, root, n_nodes_);
  p.receipt_seq = tree.receipt_seq(root);
  return p;
}

BlockHash GeostRule::pick_child(const BlockTree& tree,
                                const std::vector<BlockHash>& children) const {
  BlockHash best = children[0];
  Priority best_priority = priority_of(tree, best);
  for (std::size_t i = 1; i < children.size(); ++i) {
    const Priority candidate = priority_of(tree, children[i]);
    if (candidate.preferred_over(best_priority)) {
      best = children[i];
      best_priority = candidate;
    }
  }
  return best;
}

}  // namespace themis::core
