#include "core/adaptive_difficulty.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace themis::core {

using ledger::BlockHash;
using ledger::BlockTree;

AdaptiveDifficulty::AdaptiveDifficulty(AdaptiveConfig config) : config_(config) {
  expects(config_.n_nodes >= 2, "need at least two consensus nodes");
  expects(config_.delta >= 1, "epoch length must be at least one block");
  expects(config_.expected_interval_s > 0, "expected interval must be positive");
  expects(config_.h0 > 0, "H_0 must be positive");
  expects(config_.retarget_clamp >= 1.0, "retarget clamp must be >= 1");
  // The boundary memo gains an entry per block; pre-size it so per-node
  // policies don't all rehash in lockstep as the chain grows.
  boundary_cache_.reserve(256);
}

double AdaptiveDifficulty::initial_base_difficulty() const {
  if (config_.initial_base_difficulty > 0) return config_.initial_base_difficulty;
  // Eq. 7 with T_0 = T_max: D_base = I_0 * n * H_0.
  return config_.expected_interval_s * static_cast<double>(config_.n_nodes) *
         config_.h0;
}

std::uint32_t AdaptiveDifficulty::epoch_for(const BlockTree& tree,
                                            const BlockHash& parent) {
  return static_cast<std::uint32_t>(tree.height(parent) / config_.delta);
}

double AdaptiveDifficulty::difficulty_for(const BlockTree& tree,
                                          const BlockHash& parent,
                                          ledger::NodeId producer) {
  expects(producer < config_.n_nodes, "producer id out of range");
  const EpochTable& table = table_for(tree, parent);
  // Difficulties below 1 are meaningless for the puzzle; the multiple floor
  // already guarantees >= D_base >= 1 in the default configuration.
  return std::max(1.0, table.multiples[producer] * table.base_difficulty);
}

const AdaptiveDifficulty::EpochTable& AdaptiveDifficulty::table_for(
    const BlockTree& tree, const BlockHash& parent) {
  if (memo_table_[0] != nullptr && parent == memo_parent_[0]) {
    return *memo_table_[0];
  }
  if (memo_table_[1] != nullptr && parent == memo_parent_[1]) {
    return *memo_table_[1];
  }
  const EpochTable& table = table_for_boundary(tree, boundary_of(tree, parent));
  memo_parent_[memo_next_] = parent;
  memo_table_[memo_next_] = &table;
  memo_next_ ^= 1u;
  return table;
}

BlockHash AdaptiveDifficulty::boundary_of(const BlockTree& tree,
                                          const BlockHash& block) {
  // boundary(b) = ancestor at height floor(h/Δ)·Δ.  Recurrence: a block on a
  // boundary height is its own boundary; otherwise it shares its parent's.
  std::vector<BlockHash> path;
  BlockHash cur = block;
  for (;;) {
    const auto cached = boundary_cache_.find(cur);
    if (cached != boundary_cache_.end()) {
      for (const BlockHash& b : path) boundary_cache_.emplace(b, cached->second);
      return cached->second;
    }
    if (tree.height(cur) % config_.delta == 0) {
      boundary_cache_.emplace(cur, cur);
      for (const BlockHash& b : path) boundary_cache_.emplace(b, cur);
      return cur;
    }
    path.push_back(cur);
    const auto parent = tree.parent(cur);
    ensures(parent.has_value(), "walked past genesis looking for a boundary");
    cur = *parent;
  }
}

const AdaptiveDifficulty::EpochTable& AdaptiveDifficulty::table_for_boundary(
    const BlockTree& tree, const BlockHash& boundary) {
  const auto cached = table_cache_.find(boundary);
  if (cached != table_cache_.end()) return cached->second;

  const std::uint64_t boundary_height = tree.height(boundary);
  ensures(boundary_height % config_.delta == 0, "not an epoch boundary block");

  EpochTable table;
  table.epoch = static_cast<std::uint32_t>(boundary_height / config_.delta);

  if (boundary_height == 0) {
    // Epoch 0: m_i^0 = 1 for every node (Eq. 6), D_base^0 from Eq. 7.
    table.multiples.assign(config_.n_nodes, 1.0);
    table.base_difficulty = initial_base_difficulty();
    return table_cache_.emplace(boundary, std::move(table)).first->second;
  }

  // Walk the Δ blocks of the finished epoch (heights (e-1)Δ+1 .. eΔ) to count
  // q_i^e, and find the previous boundary for the recursion.
  std::vector<std::uint64_t> counts(config_.n_nodes, 0);
  BlockHash cur = boundary;
  for (std::uint64_t step = 0; step < config_.delta; ++step) {
    const ledger::BlockPtr b = tree.block(cur);
    if (b->producer() < config_.n_nodes) ++counts[b->producer()];
    const auto parent = tree.parent(cur);
    ensures(parent.has_value(), "epoch walk passed genesis");
    cur = *parent;
  }
  const BlockHash prev_boundary = cur;
  const EpochTable& prev = table_for_boundary(tree, prev_boundary);

  // Eq. 6: m_i^{e+1} = max((n·q_i/Δ)·m_i^e, 1).
  table.multiples.resize(config_.n_nodes);
  if (config_.enable_multiples) {
    const double n_over_delta = static_cast<double>(config_.n_nodes) /
                                static_cast<double>(config_.delta);
    for (std::size_t i = 0; i < config_.n_nodes; ++i) {
      double m = n_over_delta * static_cast<double>(counts[i]) * prev.multiples[i];
      if (config_.enforce_multiple_floor) m = std::max(m, 1.0);
      // Nodes that produced nothing keep a strictly positive multiple even in
      // the no-floor ablation (a zero multiple would mean zero difficulty).
      if (m <= 0.0) m = std::numeric_limits<double>::min();
      table.multiples[i] = m;
    }
  } else {
    // PoW-H mode: one shared difficulty, only the global retarget below.
    table.multiples.assign(config_.n_nodes, 1.0);
  }

  // §IV-B: retarget D_base by the ratio of the expected block interval to the
  // observed one in the finished epoch, clamped for stability.
  table.base_difficulty = prev.base_difficulty;
  if (config_.enable_retarget) {
    const double span_s =
        static_cast<double>(tree.block(boundary)->header().timestamp_nanos -
                            tree.block(prev_boundary)->header().timestamp_nanos) /
        1e9;
    const double observed_interval =
        span_s / static_cast<double>(config_.delta);
    if (observed_interval > 0) {
      double factor = config_.expected_interval_s / observed_interval;
      factor = std::clamp(factor, 1.0 / config_.retarget_clamp,
                          config_.retarget_clamp);
      table.base_difficulty = std::max(1.0, prev.base_difficulty * factor);
    }
  }

  return table_cache_.emplace(boundary, std::move(table)).first->second;
}

}  // namespace themis::core
