#include "core/proof_of_stake.h"

#include <numeric>

#include "common/check.h"

namespace themis::core {

StakeDifficulty::StakeDifficulty(std::vector<double> stakes,
                                 double reference_difficulty)
    : stakes_(std::move(stakes)), reference_difficulty_(reference_difficulty) {
  expects(!stakes_.empty(), "need at least one staker");
  expects(reference_difficulty_ >= 1.0, "reference difficulty must be >= 1");
  total_stake_ = std::accumulate(stakes_.begin(), stakes_.end(), 0.0);
  for (const double s : stakes_) expects(s > 0, "stakes must be positive");
}

double StakeDifficulty::difficulty_for(const ledger::BlockTree&,
                                       const ledger::BlockHash&,
                                       ledger::NodeId producer) {
  expects(producer < stakes_.size(), "producer id out of range");
  const double mean_stake = total_stake_ / static_cast<double>(stakes_.size());
  // Larger stake -> larger target -> lower difficulty, proportionally.
  return std::max(1.0, reference_difficulty_ * mean_stake / stakes_[producer]);
}

std::vector<double> StakeDifficulty::probabilities() const {
  std::vector<double> out;
  out.reserve(stakes_.size());
  for (const double s : stakes_) out.push_back(s / total_stake_);
  return out;
}

ThemisStakeDifficulty::ThemisStakeDifficulty(std::vector<double> stakes,
                                             AdaptiveConfig config)
    : stakes_(std::move(stakes)), adaptive_(config) {
  expects(stakes_.size() == config.n_nodes,
          "one stake entry per consensus node");
  double total = 0;
  for (const double s : stakes_) {
    expects(s > 0, "stakes must be positive");
    total += s;
  }
  mean_stake_ = total / static_cast<double>(stakes_.size());
}

double ThemisStakeDifficulty::difficulty_for(const ledger::BlockTree& tree,
                                             const ledger::BlockHash& parent,
                                             ledger::NodeId producer) {
  expects(producer < stakes_.size(), "producer id out of range");
  // The adaptive multiple renormalizes the stake advantage exactly as Eq. 6
  // renormalizes computing power: D_i = m_i * D_base * (mean / stake_i)
  // inverts the stake edge, then the multiple tracks the residual.
  const double base = adaptive_.difficulty_for(tree, parent, producer);
  return std::max(1.0, base * mean_stake_ / stakes_[producer]);
}

std::uint32_t ThemisStakeDifficulty::epoch_for(const ledger::BlockTree& tree,
                                               const ledger::BlockHash& parent) {
  return adaptive_.epoch_for(tree, parent);
}

std::vector<double> ThemisStakeDifficulty::probabilities(
    const ledger::BlockTree& tree, const ledger::BlockHash& parent) {
  const auto& table = adaptive_.table_for(tree, parent);
  // Rate_i ∝ stake-scan-rate / D_i ∝ stake_i / m_i (the mean and D_base are
  // shared factors).
  std::vector<double> rates(stakes_.size());
  double total = 0;
  for (std::size_t i = 0; i < stakes_.size(); ++i) {
    rates[i] = stakes_[i] / table.multiples[i];
    total += rates[i];
  }
  for (double& r : rates) r /= total;
  return rates;
}

}  // namespace themis::core
