// Factory helpers wiring the paper's algorithm variants (§VII-B).
//
//   Themis      = self-adaptive difficulty (Eq. 3-7) + GEOST  (Algorithm 1)
//   Themis-Lite = self-adaptive difficulty (Eq. 3-7) + GHOST
//   PoW-H       = fixed network-wide difficulty       + GHOST
//
// All three run on the identical PowNode event loop, so every measured
// difference is attributable to the two knobs the paper varies.
#pragma once

#include <memory>

#include "consensus/node.h"
#include "core/adaptive_difficulty.h"
#include "core/geost.h"

namespace themis::core {

enum class Algorithm {
  kThemis,
  kThemisLite,
  kPowH,
  kPbft,  // handled by the pbft module; listed for experiment configs
};

std::string_view to_string(Algorithm algorithm);

/// A Themis consensus node: adaptive difficulty + GEOST.
std::unique_ptr<consensus::PowNode> make_themis_node(
    net::Simulation& sim, net::GossipNetwork& network,
    consensus::NodeConfig node_config, AdaptiveConfig adaptive_config,
    std::shared_ptr<const consensus::KeyRegistry> registry = nullptr);

/// A Themis-Lite node: adaptive difficulty + GHOST (§VII-B).
std::unique_ptr<consensus::PowNode> make_themis_lite_node(
    net::Simulation& sim, net::GossipNetwork& network,
    consensus::NodeConfig node_config, AdaptiveConfig adaptive_config,
    std::shared_ptr<const consensus::KeyRegistry> registry = nullptr);

/// A PoW-H baseline node: Bitcoin-style difficulty (one shared value with a
/// per-epoch interval retarget, no per-node multiples) + GHOST (§VII-B:
/// "PoW-H improves the Bitcoin PoW algorithm, with GHOST as its main chain
/// consensus rule").  Set adaptive_config.initial_base_difficulty to
/// I_0 * (total hash rate) so the expected interval starts at I_0.
std::unique_ptr<consensus::PowNode> make_powh_node(
    net::Simulation& sim, net::GossipNetwork& network,
    consensus::NodeConfig node_config, AdaptiveConfig adaptive_config,
    std::shared_ptr<const consensus::KeyRegistry> registry = nullptr);

}  // namespace themis::core
