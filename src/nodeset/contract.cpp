#include "nodeset/contract.h"

#include "common/check.h"

namespace themis::nodeset {

using ledger::NodeId;

NodeSetContract::NodeSetContract(std::vector<NodeIdentity> initial_members) {
  expects(!initial_members.empty(), "node set must start non-empty");
  for (NodeIdentity& m : initial_members) {
    expects(m.id != ledger::kNoNode, "member id must be valid");
    const bool inserted = members_.emplace(m.id, std::move(m)).second;
    expects(inserted, "duplicate member id");
  }
}

std::optional<crypto::PublicKey> NodeSetContract::key_of(NodeId id) const {
  const auto it = members_.find(id);
  if (it == members_.end()) return std::nullopt;
  return it->second.public_key;
}

std::vector<NodeId> NodeSetContract::members() const {
  std::vector<NodeId> out;
  out.reserve(members_.size());
  for (const auto& [id, identity] : members_) out.push_back(id);
  return out;
}

std::uint64_t NodeSetContract::propose_add(NodeId proposer,
                                           NodeIdentity candidate) {
  expects(is_member(proposer), "only members can raise proposals");
  expects(!is_member(candidate.id), "candidate is already a member");
  expects(candidate.id != ledger::kNoNode, "candidate id must be valid");
  Proposal p;
  p.id = next_proposal_id_++;
  p.kind = ProposalKind::add;
  p.proposer = proposer;
  p.subject = std::move(candidate);
  p.supporters.insert(proposer);
  refresh_status(p);
  const std::uint64_t id = p.id;
  proposals_.emplace(id, std::move(p));
  return id;
}

std::uint64_t NodeSetContract::propose_remove(NodeId proposer, NodeId subject,
                                              std::string evidence) {
  expects(is_member(proposer), "only members can raise proposals");
  expects(is_member(subject), "removal subject must be a member");
  expects(!evidence.empty(), "removal requires evidence (§IV-C)");
  Proposal p;
  p.id = next_proposal_id_++;
  p.kind = ProposalKind::remove;
  p.proposer = proposer;
  p.subject = members_.at(subject);
  p.evidence = std::move(evidence);
  p.supporters.insert(proposer);
  refresh_status(p);
  const std::uint64_t id = p.id;
  proposals_.emplace(id, std::move(p));
  return id;
}

ProposalStatus NodeSetContract::vote(std::uint64_t proposal_id, NodeId voter,
                                     bool support) {
  expects(is_member(voter), "only members can vote");
  const auto it = proposals_.find(proposal_id);
  expects(it != proposals_.end(), "unknown proposal");
  Proposal& p = it->second;
  expects(p.status == ProposalStatus::open, "proposal is no longer open");
  if (support) {
    p.opponents.erase(voter);
    p.supporters.insert(voter);
  } else {
    p.supporters.erase(voter);
    p.opponents.insert(voter);
  }
  refresh_status(p);
  return p.status;
}

void NodeSetContract::refresh_status(Proposal& p) {
  if (p.status != ProposalStatus::open) return;
  if (majority(p)) {
    p.status = ProposalStatus::passed;
  } else if (2 * p.opponents.size() >= members_.size()) {
    // A majority can no longer form.
    p.status = ProposalStatus::rejected;
  }
}

const Proposal& NodeSetContract::proposal(std::uint64_t id) const {
  const auto it = proposals_.find(id);
  expects(it != proposals_.end(), "unknown proposal");
  return it->second;
}

std::vector<std::uint64_t> NodeSetContract::open_proposals() const {
  std::vector<std::uint64_t> out;
  for (const auto& [id, p] : proposals_) {
    if (p.status == ProposalStatus::open) out.push_back(id);
  }
  return out;
}

NodeSetContract::Activation NodeSetContract::activate_pending() {
  Activation result;
  const double n_old = static_cast<double>(members_.size());
  for (auto& [id, p] : proposals_) {
    if (p.status != ProposalStatus::passed) continue;
    if (p.kind == ProposalKind::add) {
      if (!is_member(p.subject.id)) {
        members_.emplace(p.subject.id, p.subject);
        result.added.push_back(p.subject);
      }
    } else {
      if (is_member(p.subject.id)) {
        members_.erase(p.subject.id);
        result.removed.push_back(p.subject.id);
      }
    }
    p.status = ProposalStatus::applied;
  }
  const double n_new = static_cast<double>(members_.size());
  ensures(n_new > 0, "node set must stay non-empty");
  result.base_difficulty_scale = n_new / n_old;
  return result;
}

}  // namespace themis::nodeset
