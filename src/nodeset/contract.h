// NodeSetContract — consensus node set management (§IV-C).
//
// Any consortium member can raise a proposal to Add a new node (with its
// address and identity proof) or Remove a misbehaving one (with evidence such
// as packed invalid transactions or a double-spend attempt).  Voting is one
// node one vote; a proposal passes once supporting votes exceed half of the
// current consensus node set, and takes effect at the next activation point
// (the beginning of the next consensus round / epoch).
//
// A node-set change rescales the basic block-producing difficulty by
// n_new / n_old so the network's effective computing power stays matched to
// Eq. 7 (§IV-C); activate_pending() reports that factor to the caller, which
// feeds it into the difficulty policy.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "crypto/schnorr.h"
#include "ledger/types.h"

namespace themis::nodeset {

struct NodeIdentity {
  ledger::NodeId id = ledger::kNoNode;
  crypto::PublicKey public_key{};
  std::string address;  ///< network address / identity record
};

enum class ProposalKind { add, remove };
enum class ProposalStatus { open, passed, rejected, applied };

struct Proposal {
  std::uint64_t id = 0;
  ProposalKind kind = ProposalKind::add;
  ledger::NodeId proposer = ledger::kNoNode;
  NodeIdentity subject;       ///< the node to add / remove
  std::string evidence;       ///< removal proof description (§IV-C)
  std::set<ledger::NodeId> supporters;
  std::set<ledger::NodeId> opponents;
  ProposalStatus status = ProposalStatus::open;
};

class NodeSetContract {
 public:
  explicit NodeSetContract(std::vector<NodeIdentity> initial_members);

  std::size_t member_count() const { return members_.size(); }
  bool is_member(ledger::NodeId id) const { return members_.contains(id); }
  std::optional<crypto::PublicKey> key_of(ledger::NodeId id) const;
  std::vector<ledger::NodeId> members() const;

  /// Raise a joining proposal.  The proposer (who relays the new node's
  /// request, §IV-C) votes in favor implicitly.  Throws if the proposer is
  /// not a member or the subject already is.
  std::uint64_t propose_add(ledger::NodeId proposer, NodeIdentity candidate);

  /// Raise a removal proposal with evidence of misbehavior.
  std::uint64_t propose_remove(ledger::NodeId proposer, ledger::NodeId subject,
                               std::string evidence);

  /// One node, one vote.  Re-voting replaces the previous vote.  Returns the
  /// proposal status after the vote (a majority marks it `passed`).
  ProposalStatus vote(std::uint64_t proposal_id, ledger::NodeId voter,
                      bool support);

  const Proposal& proposal(std::uint64_t id) const;
  std::vector<std::uint64_t> open_proposals() const;

  struct Activation {
    std::vector<NodeIdentity> added;
    std::vector<ledger::NodeId> removed;
    /// §IV-C: multiply D_base by this (n_new / n_old); 1.0 when unchanged.
    double base_difficulty_scale = 1.0;
  };

  /// Apply every passed proposal; called at the next consensus round / epoch
  /// boundary.  Returns what changed and the difficulty rescale factor.
  Activation activate_pending();

 private:
  bool majority(const Proposal& p) const {
    return 2 * p.supporters.size() > members_.size();
  }
  void refresh_status(Proposal& p);

  std::map<ledger::NodeId, NodeIdentity> members_;
  std::map<std::uint64_t, Proposal> proposals_;
  std::uint64_t next_proposal_id_ = 1;
};

}  // namespace themis::nodeset
