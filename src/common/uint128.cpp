#include "common/uint128.h"

#include <ostream>

#include "common/check.h"

namespace themis {

namespace {
using u64 = std::uint64_t;
using u128 = unsigned __int128;
}  // namespace

bool UInt128::add_overflow(const UInt128& rhs, UInt128& out) const {
  const u64 lo = lo_ + rhs.lo_;
  const u64 carry = lo < lo_ ? 1 : 0;
  const u64 hi = hi_ + rhs.hi_;
  const bool overflow = hi < hi_ || (carry != 0 && hi + carry == 0);
  out = UInt128(hi + carry, lo);
  return overflow;
}

bool UInt128::sub_borrow(const UInt128& rhs, UInt128& out) const {
  const bool borrow = *this < rhs;
  const u64 lo = lo_ - rhs.lo_;
  const u64 lend = lo_ < rhs.lo_ ? 1 : 0;
  out = UInt128(hi_ - rhs.hi_ - lend, lo);
  return borrow;
}

bool UInt128::mul_overflow(u64 rhs, UInt128& out) const {
  const u128 low = static_cast<u128>(lo_) * rhs;
  const u128 high = static_cast<u128>(hi_) * rhs + static_cast<u64>(low >> 64);
  out = UInt128(static_cast<u64>(high), static_cast<u64>(low));
  return (high >> 64) != 0;
}

UInt128 UInt128::operator+(const UInt128& rhs) const {
  UInt128 out;
  add_overflow(rhs, out);
  return out;
}

UInt128 UInt128::operator-(const UInt128& rhs) const {
  UInt128 out;
  sub_borrow(rhs, out);
  return out;
}

UInt128 UInt128::div_small(u64 rhs, u64& remainder) const {
  expects(rhs != 0, "division by zero");
  const u64 q_hi = hi_ / rhs;
  const u128 rest = (static_cast<u128>(hi_ % rhs) << 64) | lo_;
  const u64 q_lo = static_cast<u64>(rest / rhs);
  remainder = static_cast<u64>(rest % rhs);
  return UInt128(q_hi, q_lo);
}

std::string UInt128::to_decimal() const {
  if (is_zero()) return "0";
  std::string out;
  UInt128 v = *this;
  while (!v.is_zero()) {
    u64 digit = 0;
    v = v.div_small(10, digit);
    out.push_back(static_cast<char>('0' + digit));
  }
  return std::string(out.rbegin(), out.rend());
}

std::optional<UInt128> UInt128::from_decimal(std::string_view text) {
  if (text.empty()) return std::nullopt;
  UInt128 value;
  for (const char c : text) {
    if (c < '0' || c > '9') return std::nullopt;
    if (value.mul_overflow(10, value)) return std::nullopt;
    if (value.add_overflow(UInt128(static_cast<u64>(c - '0')), value)) {
      return std::nullopt;
    }
  }
  return value;
}

double UInt128::to_double() const {
  return static_cast<double>(hi_) * 18446744073709551616.0 +
         static_cast<double>(lo_);
}

std::ostream& operator<<(std::ostream& os, const UInt128& v) {
  return os << v.to_decimal();
}

}  // namespace themis
