// Deterministic pseudo-random number generation for simulations.
//
// Every experiment in this repository must be exactly reproducible from a
// 64-bit seed, so we implement our own generators (splitmix64 for seeding,
// xoshiro256** for the stream) instead of relying on unspecified standard-
// library distributions.  All distribution sampling here is bit-exact across
// platforms (only relying on IEEE-754 doubles).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/check.h"

namespace themis {

/// splitmix64 step; used to expand a single seed into generator state.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** 1.0 by Blackman & Vigna, seeded via splitmix64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1) with 53 bits of precision.
  double next_double();

  /// Uniform integer in [0, bound) (bound > 0); unbiased via rejection.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_range(std::int64_t lo, std::int64_t hi);

  /// Exponential with the given rate (events per unit time); rate > 0.
  double next_exponential(double rate);

  /// Bernoulli trial with success probability p in [0, 1].
  bool next_bernoulli(double p);

  /// Standard normal via Box-Muller (deterministic, no cached spare).
  double next_gaussian();

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derive an independent child generator (for per-node streams).
  Rng fork();

 private:
  std::array<std::uint64_t, 4> state_;
};

/// A buffered façade over one Rng stream whose refills may run on a worker
/// thread while consumption stays bit-identical to calling the Rng directly.
///
/// refill() pre-draws raw 64-bit values and, for each, the exponential base
/// -log1p(-u) computed exactly as Rng::next_exponential computes it.  The
/// consumers then pull from the FIFO: next_u64() yields the raw value,
/// next_exponential(rate) yields base / rate — the same IEEE-754 operations
/// in the same order as the unbuffered path, so any interleaving of the two
/// consumers reproduces the direct Rng sequence bit for bit, no matter which
/// thread ran the refill or how far ahead it buffered.  A stream is owned by
/// one consumer; refill() and next_*() must not race (parallel users refill
/// disjoint streams and rejoin before consuming).
class DrawStream {
 public:
  explicit DrawStream(std::uint64_t seed, std::size_t capacity = 512);

  /// Next raw uniform 64-bit draw (== Rng::next_u64()).
  std::uint64_t next_u64();

  /// Next exponential draw (== Rng::next_exponential(rate)); rate > 0.
  double next_exponential(double rate);

  /// Top the buffer up to capacity.  Safe to call at any point in the
  /// consumption sequence; never changes which values are produced.
  void refill();

  std::size_t available() const { return buffer_.size() - head_; }
  std::size_t capacity() const { return capacity_; }
  /// True when a refill is worth scheduling (buffer below a quarter full).
  bool low() const { return available() < capacity_ / 4; }

 private:
  struct Draw {
    std::uint64_t raw;
    double exp_base;  ///< -log1p(-u), u = (raw >> 11) * 2^-53
  };

  Rng rng_;
  std::size_t capacity_;
  std::size_t head_ = 0;
  std::vector<Draw> buffer_;
};

}  // namespace themis
