#include "common/parallel.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace themis {

std::size_t hardware_thread_count() {
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

TaskPool::TaskPool(std::size_t n_threads, std::size_t queue_capacity)
    : capacity_(std::max<std::size_t>(1, queue_capacity)) {
  n_threads = std::max<std::size_t>(1, n_threads);
  workers_.reserve(n_threads);
  for (std::size_t t = 0; t < n_threads; ++t) {
    workers_.emplace_back([this](std::stop_token stop) { worker_loop(stop); });
  }
}

TaskPool::~TaskPool() {
  {
    // Drain: every submitted task runs before the workers are stopped.
    std::unique_lock lock(mutex_);
    idle_.wait(lock, [&] { return queue_.empty() && in_flight_ == 0; });
  }
  for (auto& worker : workers_) worker.request_stop();
  not_empty_.notify_all();
  // ~jthread joins each worker.
}

void TaskPool::submit(std::function<void()> task) {
  expects(static_cast<bool>(task), "cannot submit an empty task");
  {
    std::unique_lock lock(mutex_);
    not_full_.wait(lock, [&] { return queue_.size() < capacity_; });
    queue_.push_back(std::move(task));
  }
  not_empty_.notify_one();
}

void TaskPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_.wait(lock, [&] { return queue_.empty() && in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr error = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void TaskPool::worker_loop(std::stop_token stop) {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      not_empty_.wait(lock, stop, [&] { return !queue_.empty(); });
      if (queue_.empty()) return;  // stop requested and nothing left to run
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    not_full_.notify_one();
    try {
      task();
    } catch (...) {
      const std::scoped_lock lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      const std::scoped_lock lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace themis
