// Bounds-checked binary serialization.
//
// All on-wire / on-disk encodings in the library use these little-endian
// primitives, so encode/decode are symmetric by construction.  Reader throws
// DecodeError instead of reading past the end; Writer owns its buffer.
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <string_view>

#include "common/bytes.h"
#include "common/check.h"

namespace themis {

class DecodeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Writer {
 public:
  Writer() = default;
  explicit Writer(std::size_t reserve_bytes) { buf_.reserve(reserve_bytes); }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { write_le(v); }
  void u32(std::uint32_t v) { write_le(v); }
  void u64(std::uint64_t v) { write_le(v); }
  void i64(std::int64_t v) { write_le(static_cast<std::uint64_t>(v)); }

  /// IEEE-754 doubles are serialized via their bit pattern.
  void f64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }

  /// LEB128-style variable-length unsigned integer (1..10 bytes).
  void varint(std::uint64_t v) {
    while (v >= 0x80) {
      buf_.push_back(static_cast<std::uint8_t>(v) | 0x80);
      v >>= 7;
    }
    buf_.push_back(static_cast<std::uint8_t>(v));
  }

  void raw(ByteSpan data) { buf_.insert(buf_.end(), data.begin(), data.end()); }
  void hash(const Hash32& h) { raw(ByteSpan(h.data(), h.size())); }

  /// Length-prefixed byte string.
  void bytes(ByteSpan data) {
    varint(data.size());
    raw(data);
  }
  void str(std::string_view s) {
    bytes(ByteSpan(reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
  }

  const Bytes& buffer() const { return buf_; }
  Bytes take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  template <typename T>
  void write_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  Bytes buf_;
};

class Reader {
 public:
  explicit Reader(ByteSpan data) : data_(data) {}

  std::uint8_t u8() { return read_le<std::uint8_t>(); }
  std::uint16_t u16() { return read_le<std::uint16_t>(); }
  std::uint32_t u32() { return read_le<std::uint32_t>(); }
  std::uint64_t u64() { return read_le<std::uint64_t>(); }
  std::int64_t i64() { return static_cast<std::int64_t>(read_le<std::uint64_t>()); }

  double f64() {
    const std::uint64_t bits = u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  std::uint64_t varint() {
    std::uint64_t out = 0;
    int shift = 0;
    for (int i = 0; i < 10; ++i) {
      const std::uint8_t byte = u8();
      out |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) return out;
      shift += 7;
    }
    throw DecodeError("varint longer than 10 bytes");
  }

  Bytes raw(std::size_t n) {
    require(n);
    Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
              data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return out;
  }

  Hash32 hash() {
    require(32);
    Hash32 h{};
    std::memcpy(h.data(), data_.data() + pos_, 32);
    pos_ += 32;
    return h;
  }

  Bytes bytes() {
    const std::uint64_t n = varint();
    if (n > remaining()) throw DecodeError("length prefix exceeds buffer");
    return raw(static_cast<std::size_t>(n));
  }

  std::string str() {
    const Bytes b = bytes();
    return std::string(b.begin(), b.end());
  }

  std::size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return pos_ == data_.size(); }

  /// Throw unless the whole buffer was consumed (trailing garbage check).
  void expect_done() const {
    if (!done()) throw DecodeError("trailing bytes after decode");
  }

 private:
  void require(std::size_t n) const {
    if (n > remaining()) throw DecodeError("read past end of buffer");
  }

  template <typename T>
  T read_le() {
    require(sizeof(T));
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += sizeof(T);
    return static_cast<T>(v);
  }

  ByteSpan data_;
  std::size_t pos_ = 0;
};

}  // namespace themis
