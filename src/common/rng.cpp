#include "common/rng.h"

#include <cmath>
#include <numbers>

namespace themis {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

namespace {
std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& limb : state_) limb = splitmix64(s);
  // xoshiro's all-zero state is invalid; splitmix64 cannot produce four zero
  // outputs from any seed, but guard anyway.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  expects(bound > 0, "bound must be positive");
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::next_range(std::int64_t lo, std::int64_t hi) {
  expects(lo <= hi, "empty range");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(span == 0 ? next_u64() : next_below(span));
}

double Rng::next_exponential(double rate) {
  expects(rate > 0.0, "rate must be positive");
  // -log(1 - U) with U in [0, 1); 1-U is in (0, 1] so log() is finite.
  return -std::log1p(-next_double()) / rate;
}

bool Rng::next_bernoulli(double p) {
  expects(p >= 0.0 && p <= 1.0, "probability must lie in [0, 1]");
  return next_double() < p;
}

double Rng::next_gaussian() {
  // Box-Muller; draw u1 from (0, 1].
  const double u1 = 1.0 - next_double();
  const double u2 = next_double();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
}

Rng Rng::fork() { return Rng(next_u64()); }

DrawStream::DrawStream(std::uint64_t seed, std::size_t capacity)
    : rng_(seed), capacity_(capacity) {
  expects(capacity_ >= 1, "capacity must be at least 1");
  buffer_.reserve(capacity_);
}

void DrawStream::refill() {
  if (head_ > 0) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(head_));
    head_ = 0;
  }
  while (buffer_.size() < capacity_) {
    const std::uint64_t raw = rng_.next_u64();
    // Exactly Rng::next_double() / the -log1p step of next_exponential().
    const double u = static_cast<double>(raw >> 11) * 0x1.0p-53;
    buffer_.push_back(Draw{raw, -std::log1p(-u)});
  }
}

std::uint64_t DrawStream::next_u64() {
  if (head_ == buffer_.size()) refill();
  return buffer_[head_++].raw;
}

double DrawStream::next_exponential(double rate) {
  expects(rate > 0.0, "rate must be positive");
  if (head_ == buffer_.size()) refill();
  return buffer_[head_++].exp_base / rate;
}

}  // namespace themis
