// 256-bit unsigned integer arithmetic.
//
// Used for proof-of-work targets (hash < target comparisons), difficulty ->
// target conversion, and as the substrate for the secp256k1 field and scalar
// arithmetic in themis::crypto.  Little-endian limb order: limb_[0] holds the
// least-significant 64 bits.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/bytes.h"

namespace themis {

struct DivResult;

class UInt256 {
 public:
  constexpr UInt256() : limbs_{0, 0, 0, 0} {}
  constexpr explicit UInt256(std::uint64_t v) : limbs_{v, 0, 0, 0} {}
  constexpr UInt256(std::uint64_t l0, std::uint64_t l1, std::uint64_t l2,
                    std::uint64_t l3)
      : limbs_{l0, l1, l2, l3} {}

  /// Big-endian 32-byte decode (the natural byte order of SHA-256 digests).
  static UInt256 from_be_bytes(const Hash32& bytes);
  /// Big-endian 32-byte encode.
  Hash32 to_be_bytes() const;

  /// Parse up to 64 hex characters (no 0x prefix). Throws on bad input.
  static UInt256 from_hex(std::string_view hex);
  std::string to_hex() const;

  static constexpr UInt256 zero() { return UInt256(); }
  static constexpr UInt256 one() { return UInt256(1); }
  /// 2^256 - 1, the maximum SHA-256 output (T_max in the paper, Eq. 7).
  static constexpr UInt256 max() {
    return UInt256(~0ull, ~0ull, ~0ull, ~0ull);
  }

  bool is_zero() const { return (limbs_[0] | limbs_[1] | limbs_[2] | limbs_[3]) == 0; }
  std::uint64_t limb(int i) const { return limbs_[static_cast<std::size_t>(i)]; }
  void set_limb(int i, std::uint64_t v) { limbs_[static_cast<std::size_t>(i)] = v; }

  /// Index of the highest set bit (0-based), or -1 when zero.
  int bit_length() const;
  bool bit(int i) const {
    return (limbs_[static_cast<std::size_t>(i / 64)] >> (i % 64)) & 1u;
  }

  // Arithmetic (mod 2^256; overflow wraps, as usual for fixed-width integers).
  UInt256 operator+(const UInt256& rhs) const;
  UInt256 operator-(const UInt256& rhs) const;
  UInt256 operator*(const UInt256& rhs) const;  // low 256 bits of the product
  UInt256 operator<<(int shift) const;
  UInt256 operator>>(int shift) const;
  UInt256 operator&(const UInt256& rhs) const;
  UInt256 operator|(const UInt256& rhs) const;
  UInt256 operator^(const UInt256& rhs) const;
  UInt256 operator~() const;

  UInt256& operator+=(const UInt256& rhs) { return *this = *this + rhs; }
  UInt256& operator-=(const UInt256& rhs) { return *this = *this - rhs; }

  /// Add with carry-out (true if the sum wrapped past 2^256).
  bool add_overflow(const UInt256& rhs, UInt256& out) const;
  /// Subtract with borrow-out (true if rhs > *this).
  bool sub_borrow(const UInt256& rhs, UInt256& out) const;

  /// Multiply by a 64-bit value; returns low 256 bits, writes the carry limb.
  UInt256 mul_small(std::uint64_t rhs, std::uint64_t& carry_out) const;
  /// Divide by a 64-bit value; returns quotient, writes remainder.
  UInt256 div_small(std::uint64_t rhs, std::uint64_t& remainder) const;

  /// Full 256/256 long division. Throws PreconditionError on divide-by-zero.
  DivResult divmod(const UInt256& divisor) const;

  /// Full 256x256 -> 512-bit product as (high, low) pair.
  static void mul_wide(const UInt256& a, const UInt256& b, UInt256& hi, UInt256& lo);

  /// Approximate conversion to double (for statistics/diagnostics).
  double to_double() const;

  auto operator<=>(const UInt256& rhs) const {
    for (int i = 3; i >= 0; --i) {
      if (limbs_[static_cast<std::size_t>(i)] != rhs.limbs_[static_cast<std::size_t>(i)]) {
        return limbs_[static_cast<std::size_t>(i)] < rhs.limbs_[static_cast<std::size_t>(i)]
                   ? std::strong_ordering::less
                   : std::strong_ordering::greater;
      }
    }
    return std::strong_ordering::equal;
  }
  bool operator==(const UInt256& rhs) const = default;

 private:
  std::array<std::uint64_t, 4> limbs_;
};

/// Quotient/remainder pair returned by UInt256::divmod.
struct DivResult {
  UInt256 quotient;
  UInt256 remainder;
};

/// Proof-of-work target for a real-valued difficulty `d >= 1`:
/// target = floor(T_max / d) up to rounding (§IV-B: t_i = T_0 / D_i with
/// T_0 = T_max).  Accepts d in [1, 2^200); throws otherwise.
UInt256 target_for_difficulty(double difficulty);

/// Inverse of target_for_difficulty (approximate): T_max / target.
double difficulty_for_target(const UInt256& target);

}  // namespace themis
