// Simulated-time types.
//
// The discrete-event simulator measures time in integer nanoseconds to keep
// event ordering exact and platform-independent.  SimTime is a strong type
// (distinct from plain int64_t) so durations and wall-clock instants cannot
// be mixed up with other integers.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace themis {

class SimTime {
 public:
  constexpr SimTime() = default;
  constexpr explicit SimTime(std::int64_t nanos) : nanos_(nanos) {}

  static constexpr SimTime zero() { return SimTime(0); }
  static constexpr SimTime nanos(std::int64_t n) { return SimTime(n); }
  static constexpr SimTime micros(std::int64_t us) { return SimTime(us * 1000); }
  static constexpr SimTime millis(std::int64_t ms) { return SimTime(ms * 1'000'000); }
  static constexpr SimTime seconds(double s) {
    return SimTime(static_cast<std::int64_t>(s * 1e9));
  }
  /// Largest representable instant; used as "never".
  static constexpr SimTime infinity() { return SimTime(INT64_MAX); }

  constexpr std::int64_t count_nanos() const { return nanos_; }
  constexpr double to_seconds() const { return static_cast<double>(nanos_) / 1e9; }

  constexpr SimTime operator+(SimTime rhs) const { return SimTime(nanos_ + rhs.nanos_); }
  constexpr SimTime operator-(SimTime rhs) const { return SimTime(nanos_ - rhs.nanos_); }
  constexpr SimTime operator*(std::int64_t k) const { return SimTime(nanos_ * k); }
  SimTime& operator+=(SimTime rhs) {
    nanos_ += rhs.nanos_;
    return *this;
  }
  SimTime& operator-=(SimTime rhs) {
    nanos_ -= rhs.nanos_;
    return *this;
  }

  auto operator<=>(const SimTime&) const = default;

  std::string to_string() const {
    return std::to_string(to_seconds()) + "s";
  }

 private:
  std::int64_t nanos_ = 0;
};

}  // namespace themis
