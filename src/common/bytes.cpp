#include "common/bytes.h"

#include "common/check.h"

namespace themis {

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string to_hex(ByteSpan data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0x0f]);
  }
  return out;
}

std::string to_hex(const Hash32& h) { return to_hex(ByteSpan(h.data(), h.size())); }

Bytes from_hex(std::string_view hex) {
  expects(hex.size() % 2 == 0, "hex string must have even length");
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = hex_value(hex[i]);
    const int lo = hex_value(hex[i + 1]);
    expects(hi >= 0 && lo >= 0, "invalid hex character");
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

Hash32 hash_from_hex(std::string_view hex) {
  expects(hex.size() == 64, "Hash32 needs exactly 64 hex characters");
  const Bytes raw = from_hex(hex);
  Hash32 h{};
  std::copy(raw.begin(), raw.end(), h.begin());
  return h;
}

bool equal_ct(ByteSpan a, ByteSpan b) {
  if (a.size() != b.size()) return false;
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) diff |= a[i] ^ b[i];
  return diff == 0;
}

Bytes bytes_of(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

}  // namespace themis
