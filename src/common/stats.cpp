#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

namespace themis {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() <= 1) return 0.0;
  const double mu = mean(xs);
  double sum = 0.0;
  for (double x : xs) {
    const double d = x - mu;
    sum += d * d;
  }
  return sum / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double min_of(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::max_element(xs.begin(), xs.end());
}

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double frequency_variance(std::span<const std::uint64_t> counts, double total) {
  if (counts.empty() || total <= 0.0) return 0.0;
  std::vector<double> freqs;
  freqs.reserve(counts.size());
  for (std::uint64_t c : counts) freqs.push_back(static_cast<double>(c) / total);
  return variance(freqs);
}

double frequency_variance_noalloc(std::span<const std::uint64_t> counts,
                                  double total) {
  if (counts.empty() || total <= 0.0) return 0.0;
  // Mirrors variance(): 0 for N <= 1, two passes otherwise.  Recomputing
  // fl(c / total) in the second pass yields the identical double, so the
  // result matches the vector-materializing path bit for bit.
  if (counts.size() <= 1) return 0.0;
  const double n = static_cast<double>(counts.size());
  double sum = 0.0;
  for (std::uint64_t c : counts) sum += static_cast<double>(c) / total;
  const double mu = sum / n;
  double acc = 0.0;
  for (std::uint64_t c : counts) {
    const double d = static_cast<double>(c) / total - mu;
    acc += d * d;
  }
  return acc / n;
}

}  // namespace themis
