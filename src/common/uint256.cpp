#include "common/uint256.h"

#include <bit>
#include <cmath>

#include "common/check.h"

namespace themis {

using u64 = std::uint64_t;
using u128 = unsigned __int128;

UInt256 UInt256::from_be_bytes(const Hash32& bytes) {
  UInt256 out;
  for (int limb = 0; limb < 4; ++limb) {
    u64 v = 0;
    // limb 0 is least significant -> last 8 bytes of the big-endian buffer.
    const std::size_t base = static_cast<std::size_t>((3 - limb) * 8);
    for (std::size_t i = 0; i < 8; ++i) v = (v << 8) | bytes[base + i];
    out.limbs_[static_cast<std::size_t>(limb)] = v;
  }
  return out;
}

Hash32 UInt256::to_be_bytes() const {
  Hash32 out{};
  for (int limb = 0; limb < 4; ++limb) {
    u64 v = limbs_[static_cast<std::size_t>(limb)];
    const std::size_t base = static_cast<std::size_t>((3 - limb) * 8);
    for (int i = 7; i >= 0; --i) {
      out[base + static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(v & 0xff);
      v >>= 8;
    }
  }
  return out;
}

UInt256 UInt256::from_hex(std::string_view hex) {
  expects(!hex.empty() && hex.size() <= 64, "hex literal must be 1..64 chars");
  // Left-pad to 64 chars, then decode big-endian.
  std::string padded(64 - hex.size(), '0');
  padded.append(hex);
  const Bytes raw = themis::from_hex(padded);
  Hash32 h{};
  std::copy(raw.begin(), raw.end(), h.begin());
  return from_be_bytes(h);
}

std::string UInt256::to_hex() const { return themis::to_hex(to_be_bytes()); }

int UInt256::bit_length() const {
  for (int i = 3; i >= 0; --i) {
    const u64 limb = limbs_[static_cast<std::size_t>(i)];
    if (limb != 0) return i * 64 + 63 - std::countl_zero(limb);
  }
  return -1;
}

bool UInt256::add_overflow(const UInt256& rhs, UInt256& out) const {
  u64 carry = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    const u128 sum = static_cast<u128>(limbs_[i]) + rhs.limbs_[i] + carry;
    out.limbs_[i] = static_cast<u64>(sum);
    carry = static_cast<u64>(sum >> 64);
  }
  return carry != 0;
}

bool UInt256::sub_borrow(const UInt256& rhs, UInt256& out) const {
  u64 borrow = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    const u128 lhs = static_cast<u128>(limbs_[i]);
    const u128 sub = static_cast<u128>(rhs.limbs_[i]) + borrow;
    out.limbs_[i] = static_cast<u64>(lhs - sub);
    borrow = lhs < sub ? 1 : 0;
  }
  return borrow != 0;
}

UInt256 UInt256::operator+(const UInt256& rhs) const {
  UInt256 out;
  add_overflow(rhs, out);
  return out;
}

UInt256 UInt256::operator-(const UInt256& rhs) const {
  UInt256 out;
  sub_borrow(rhs, out);
  return out;
}

UInt256 UInt256::operator*(const UInt256& rhs) const {
  UInt256 hi, lo;
  mul_wide(*this, rhs, hi, lo);
  return lo;
}

void UInt256::mul_wide(const UInt256& a, const UInt256& b, UInt256& hi, UInt256& lo) {
  u64 prod[8] = {0};
  for (std::size_t i = 0; i < 4; ++i) {
    u64 carry = 0;
    for (std::size_t j = 0; j < 4; ++j) {
      const u128 cur = static_cast<u128>(a.limbs_[i]) * b.limbs_[j] + prod[i + j] + carry;
      prod[i + j] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
    }
    prod[i + 4] = carry;
  }
  lo = UInt256(prod[0], prod[1], prod[2], prod[3]);
  hi = UInt256(prod[4], prod[5], prod[6], prod[7]);
}

UInt256 UInt256::operator<<(int shift) const {
  expects(shift >= 0 && shift < 256, "shift out of range");
  if (shift == 0) return *this;
  UInt256 out;
  const int limb_shift = shift / 64;
  const int bit_shift = shift % 64;
  for (int i = 3; i >= 0; --i) {
    const int src = i - limb_shift;
    u64 v = 0;
    if (src >= 0) {
      v = limbs_[static_cast<std::size_t>(src)] << bit_shift;
      if (bit_shift != 0 && src - 1 >= 0) {
        v |= limbs_[static_cast<std::size_t>(src - 1)] >> (64 - bit_shift);
      }
    }
    out.limbs_[static_cast<std::size_t>(i)] = v;
  }
  return out;
}

UInt256 UInt256::operator>>(int shift) const {
  expects(shift >= 0 && shift < 256, "shift out of range");
  if (shift == 0) return *this;
  UInt256 out;
  const int limb_shift = shift / 64;
  const int bit_shift = shift % 64;
  for (int i = 0; i < 4; ++i) {
    const int src = i + limb_shift;
    u64 v = 0;
    if (src <= 3) {
      v = limbs_[static_cast<std::size_t>(src)] >> bit_shift;
      if (bit_shift != 0 && src + 1 <= 3) {
        v |= limbs_[static_cast<std::size_t>(src + 1)] << (64 - bit_shift);
      }
    }
    out.limbs_[static_cast<std::size_t>(i)] = v;
  }
  return out;
}

UInt256 UInt256::operator&(const UInt256& rhs) const {
  UInt256 out;
  for (std::size_t i = 0; i < 4; ++i) out.limbs_[i] = limbs_[i] & rhs.limbs_[i];
  return out;
}

UInt256 UInt256::operator|(const UInt256& rhs) const {
  UInt256 out;
  for (std::size_t i = 0; i < 4; ++i) out.limbs_[i] = limbs_[i] | rhs.limbs_[i];
  return out;
}

UInt256 UInt256::operator^(const UInt256& rhs) const {
  UInt256 out;
  for (std::size_t i = 0; i < 4; ++i) out.limbs_[i] = limbs_[i] ^ rhs.limbs_[i];
  return out;
}

UInt256 UInt256::operator~() const {
  UInt256 out;
  for (std::size_t i = 0; i < 4; ++i) out.limbs_[i] = ~limbs_[i];
  return out;
}

UInt256 UInt256::mul_small(u64 rhs, u64& carry_out) const {
  UInt256 out;
  u64 carry = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    const u128 cur = static_cast<u128>(limbs_[i]) * rhs + carry;
    out.limbs_[i] = static_cast<u64>(cur);
    carry = static_cast<u64>(cur >> 64);
  }
  carry_out = carry;
  return out;
}

UInt256 UInt256::div_small(u64 rhs, u64& remainder) const {
  expects(rhs != 0, "division by zero");
  UInt256 out;
  u128 rem = 0;
  for (int i = 3; i >= 0; --i) {
    const u128 cur = (rem << 64) | limbs_[static_cast<std::size_t>(i)];
    out.limbs_[static_cast<std::size_t>(i)] = static_cast<u64>(cur / rhs);
    rem = cur % rhs;
  }
  remainder = static_cast<u64>(rem);
  return out;
}

DivResult UInt256::divmod(const UInt256& divisor) const {
  expects(!divisor.is_zero(), "division by zero");
  DivResult r;
  if (*this < divisor) {
    r.remainder = *this;
    return r;
  }
  // Fast path when the divisor fits one limb.
  if (divisor.bit_length() < 64) {
    u64 rem = 0;
    r.quotient = div_small(divisor.limb(0), rem);
    r.remainder = UInt256(rem);
    return r;
  }
  // Schoolbook binary long division, MSB first.
  UInt256 quotient, remainder;
  for (int i = bit_length(); i >= 0; --i) {
    remainder = remainder << 1;
    if (bit(i)) remainder.limbs_[0] |= 1;
    if (remainder >= divisor) {
      remainder -= divisor;
      quotient.limbs_[static_cast<std::size_t>(i / 64)] |= (1ull << (i % 64));
    }
  }
  r.quotient = quotient;
  r.remainder = remainder;
  return r;
}

double UInt256::to_double() const {
  double out = 0.0;
  for (int i = 3; i >= 0; --i) {
    out = out * 18446744073709551616.0 +  // 2^64
          static_cast<double>(limbs_[static_cast<std::size_t>(i)]);
  }
  return out;
}

UInt256 target_for_difficulty(double difficulty) {
  expects(std::isfinite(difficulty) && difficulty >= 1.0 &&
              difficulty < std::ldexp(1.0, 200),
          "difficulty must lie in [1, 2^200)");
  if (difficulty == 1.0) return UInt256::max();
  // Decompose d = m * 2^e with m in [0.5, 1); then
  //   T_max / d = (T_max >> e) * 2^32 / round(m * 2^32).
  int e = 0;
  const double m = std::frexp(difficulty, &e);
  const u64 md = static_cast<u64>(std::llround(std::ldexp(m, 32)));  // [2^31, 2^32]
  UInt256 shifted = UInt256::max() >> e;
  u64 rem = 0;
  UInt256 q = shifted.div_small(md, rem);
  return q << 32;
}

double difficulty_for_target(const UInt256& target) {
  expects(!target.is_zero(), "target must be non-zero");
  return UInt256::max().to_double() / target.to_double();
}

}  // namespace themis
