// Descriptive statistics used by the paper's metrics (Eq. 1 and Eq. 2).
//
// Both σ_f² (variance of block-producing frequency, the Equality metric) and
// σ_p² (variance of block-producing probability, the Unpredictability metric)
// are *population* variances over the consensus node set, so `variance()`
// divides by N, not N-1.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace themis {

double mean(std::span<const double> xs);

/// Population variance: sum((x - mean)^2) / N.  Returns 0 for N <= 1.
double variance(std::span<const double> xs);

double stddev(std::span<const double> xs);

double min_of(std::span<const double> xs);
double max_of(std::span<const double> xs);

/// Streaming mean/variance (Welford).  Numerically stable; population stats.
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return n_ == 0 ? 0.0 : mean_; }
  double variance() const { return n_ == 0 ? 0.0 : m2_ / static_cast<double>(n_); }
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Convenience: variance of counts normalized by `total` (frequencies).
/// Matches Eq. 1 with f_i = q_i / Δ when total = Δ.
double frequency_variance(std::span<const std::uint64_t> counts, double total);

/// Bit-identical to `frequency_variance` but without materializing the
/// frequency vector: it performs the exact same IEEE operation sequence
/// (divide in index order, sum, then sum of squared deviations) on the fly.
/// Zero allocation — safe for per-block hot paths (the GEOST variance cache
/// recomputes through this on every invalidation).
double frequency_variance_noalloc(std::span<const std::uint64_t> counts,
                                  double total);

}  // namespace themis
