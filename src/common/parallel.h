// Minimal threading utilities for fanning independent simulation trials
// across cores.
//
// The simulator itself stays single-threaded and deterministic; parallelism
// lives strictly *between* trials, each of which owns every piece of mutable
// state it touches (its own net::Simulation, GossipNetwork and Rng streams).
// Determinism therefore never depends on scheduling: threads only decide
// wall-clock time, the per-trial seeds decide the results.
//
//  * TaskPool — fixed set of std::jthread workers pulling from a bounded
//    FIFO queue.  submit() applies backpressure (blocks while the queue is
//    full) instead of growing memory without bound; wait_idle() drains the
//    pool and rethrows the first task exception.
//  * parallel_for_index / parallel_for_each — the common "N independent
//    items, any order" fan-out over an atomic work counter.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <iterator>
#include <mutex>
#include <thread>
#include <vector>

namespace themis {

/// std::thread::hardware_concurrency() clamped to at least 1 (the standard
/// allows it to return 0 when the count is unknowable).
std::size_t hardware_thread_count();

class TaskPool {
 public:
  /// Spawn `n_threads` workers (clamped to >= 1).  At most `queue_capacity`
  /// tasks wait unstarted; further submit() calls block until a slot frees.
  explicit TaskPool(std::size_t n_threads, std::size_t queue_capacity = 1024);

  /// Graceful shutdown: every task submitted before destruction runs to
  /// completion, then the workers stop.  An unobserved task exception (no
  /// wait_idle() call after it was stored) is dropped.
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  /// Enqueue a task.  Tasks are dispatched to workers in submission order
  /// (FIFO), so a single-threaded pool runs them exactly in submit() order.
  void submit(std::function<void()> task);

  /// Block until the queue is empty and no task is running, then rethrow the
  /// first exception any task threw since the last wait_idle() (if any).
  /// The pool stays usable afterwards.
  void wait_idle();

  std::size_t thread_count() const { return workers_.size(); }

 private:
  void worker_loop(std::stop_token stop);

  const std::size_t capacity_;
  std::mutex mutex_;
  std::condition_variable_any not_empty_;
  std::condition_variable not_full_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;
  std::exception_ptr first_error_;
  std::vector<std::jthread> workers_;  // last member: joins before the rest die
};

/// Run fn(i) for every i in [0, n_items) on up to `n_threads` threads
/// (0 = one per hardware thread).  Blocks until every item completes; the
/// first exception thrown by any item is rethrown after the remaining
/// in-flight items finish (unstarted items are skipped).  Item order across
/// threads is unspecified — items must be independent.
template <typename Fn>
void parallel_for_index(std::size_t n_threads, std::size_t n_items, Fn&& fn) {
  if (n_items == 0) return;
  if (n_threads == 0) n_threads = hardware_thread_count();
  n_threads = std::min(n_threads, n_items);
  if (n_threads <= 1) {
    for (std::size_t i = 0; i < n_items; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::mutex error_mutex;
  std::exception_ptr first_error;
  {
    std::vector<std::jthread> workers;
    workers.reserve(n_threads);
    for (std::size_t t = 0; t < n_threads; ++t) {
      workers.emplace_back([&] {
        for (;;) {
          if (failed.load(std::memory_order_relaxed)) return;
          const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= n_items) return;
          try {
            fn(i);
          } catch (...) {
            const std::scoped_lock lock(error_mutex);
            if (!first_error) first_error = std::current_exception();
            failed.store(true, std::memory_order_relaxed);
          }
        }
      });
    }
  }  // jthread destructors join every worker
  if (first_error) std::rethrow_exception(first_error);
}

/// parallel_for_index over a random-access range: fn(items[i]).
template <typename Range, typename Fn>
void parallel_for_each(std::size_t n_threads, Range& items, Fn&& fn) {
  parallel_for_index(n_threads, std::size(items),
                     [&](std::size_t i) { fn(items[i]); });
}

}  // namespace themis
