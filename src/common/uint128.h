// 128-bit unsigned integer for ledger balances.
//
// Consortium ledgers carry realistic economic ranges — 64-bit raw units
// overflow once supplies reach ~1.8e19, so account balances and transfer
// amounts are 128-bit (cf. the chratos uint128_union exemplar).  Unlike
// UInt256 (a proof-of-work substrate), UInt128 is a *checked* quantity type:
// ledger code uses add_overflow/sub_borrow and treats overflow as a
// transaction failure, never as silent wraparound.
//
// Conversion is exact in both directions: to_decimal()/from_decimal() round-
// trip every value, which is how balances cross the RPC JSON boundary (JSON
// doubles corrupt integers past 2^53, so amounts travel as decimal strings).
// Little-endian limb order: lo() holds the least-significant 64 bits.
#pragma once

#include <compare>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>

namespace themis {

class UInt128 {
 public:
  constexpr UInt128() = default;
  // Implicit on purpose: every u64 widens losslessly, so existing call sites
  // (genesis allocations, test literals) keep working unchanged.
  constexpr UInt128(std::uint64_t v) : lo_(v) {}  // NOLINT(runtime/explicit)
  constexpr UInt128(std::uint64_t hi, std::uint64_t lo) : lo_(lo), hi_(hi) {}

  static constexpr UInt128 zero() { return UInt128(); }
  static constexpr UInt128 max() { return UInt128(~0ull, ~0ull); }

  constexpr bool is_zero() const { return (lo_ | hi_) == 0; }
  constexpr std::uint64_t lo() const { return lo_; }
  constexpr std::uint64_t hi() const { return hi_; }
  /// True iff the value fits in 64 bits (lossless narrowing to u64).
  constexpr bool fits_u64() const { return hi_ == 0; }

  /// Add with carry-out (true if the sum wrapped past 2^128).  `out` may
  /// alias *this or rhs.
  bool add_overflow(const UInt128& rhs, UInt128& out) const;
  /// Subtract with borrow-out (true if rhs > *this).  `out` may alias.
  bool sub_borrow(const UInt128& rhs, UInt128& out) const;
  /// Multiply by a 64-bit value (true if the product overflowed 128 bits).
  bool mul_overflow(std::uint64_t rhs, UInt128& out) const;

  // Wrapping arithmetic (mod 2^128), for non-ledger uses and tests.
  UInt128 operator+(const UInt128& rhs) const;
  UInt128 operator-(const UInt128& rhs) const;
  UInt128& operator+=(const UInt128& rhs) { return *this = *this + rhs; }
  UInt128& operator-=(const UInt128& rhs) { return *this = *this - rhs; }

  /// Divide by a 64-bit value; returns quotient, writes remainder.
  /// Throws PreconditionError on divide-by-zero.
  UInt128 div_small(std::uint64_t rhs, std::uint64_t& remainder) const;

  /// Exact base-10 rendering, no leading zeros ("0" for zero).
  std::string to_decimal() const;
  /// Parse a base-10 string.  Rejects empty input, non-digit characters
  /// (including signs and whitespace), and values >= 2^128.  Leading zeros
  /// are accepted ("007" == 7) so decimal round-trips stay forgiving.
  static std::optional<UInt128> from_decimal(std::string_view text);

  /// Approximate conversion for statistics/diagnostics.
  double to_double() const;

  constexpr auto operator<=>(const UInt128& rhs) const {
    if (hi_ != rhs.hi_) {
      return hi_ < rhs.hi_ ? std::strong_ordering::less
                           : std::strong_ordering::greater;
    }
    if (lo_ != rhs.lo_) {
      return lo_ < rhs.lo_ ? std::strong_ordering::less
                           : std::strong_ordering::greater;
    }
    return std::strong_ordering::equal;
  }
  constexpr bool operator==(const UInt128& rhs) const = default;

 private:
  std::uint64_t lo_ = 0;
  std::uint64_t hi_ = 0;
};

/// Decimal rendering (gtest failure messages, logs).
std::ostream& operator<<(std::ostream& os, const UInt128& v);

}  // namespace themis
