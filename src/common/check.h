// Lightweight precondition / invariant checking.
//
// Following the Core Guidelines (I.6 "Prefer Expects() for expressing
// preconditions", E.12) we centralize argument and invariant checking in two
// tiny helpers that throw a dedicated exception type.  They are plain
// functions, not macros, so call sites stay greppable and type-checked.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>
#include <string_view>

namespace themis {

/// Thrown when a caller violates a documented precondition.
class PreconditionError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown when an internal invariant does not hold (a bug in this library).
class InvariantError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Check a caller-facing precondition; throws PreconditionError on failure.
inline void expects(bool condition, std::string_view message,
                    std::source_location loc = std::source_location::current()) {
  if (!condition) {
    throw PreconditionError(std::string(loc.file_name()) + ":" +
                            std::to_string(loc.line()) + ": precondition failed: " +
                            std::string(message));
  }
}

/// Check an internal invariant; throws InvariantError on failure.
inline void ensures(bool condition, std::string_view message,
                    std::source_location loc = std::source_location::current()) {
  if (!condition) {
    throw InvariantError(std::string(loc.file_name()) + ":" +
                         std::to_string(loc.line()) + ": invariant failed: " +
                         std::string(message));
  }
}

}  // namespace themis
