// Byte-buffer aliases and hex conversion helpers shared across the library.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace themis {

using Bytes = std::vector<std::uint8_t>;
using ByteSpan = std::span<const std::uint8_t>;

/// A 32-byte value (SHA-256 digest, block id, key material, ...).
using Hash32 = std::array<std::uint8_t, 32>;

/// Lowercase hex encoding of an arbitrary byte span.
std::string to_hex(ByteSpan data);

/// Lowercase hex of a 32-byte hash (convenience overload).
std::string to_hex(const Hash32& h);

/// Parse hex (upper or lower case, no 0x prefix). Throws PreconditionError on
/// odd length or non-hex characters.
Bytes from_hex(std::string_view hex);

/// Parse exactly 64 hex characters into a Hash32.
Hash32 hash_from_hex(std::string_view hex);

/// Constant-time-ish equality for fixed-size secrets (avoids short-circuit).
bool equal_ct(ByteSpan a, ByteSpan b);

/// Convenience: build Bytes from a string literal payload.
Bytes bytes_of(std::string_view s);

/// Hasher for Hash32 keys in unordered containers.  The key is already a
/// cryptographic digest, so folding a prefix is enough.
struct Hash32Hasher {
  std::size_t operator()(const Hash32& id) const {
    std::size_t out = 0;
    for (std::size_t i = 0; i < sizeof(std::size_t); ++i) {
      out = (out << 8) | id[i];
    }
    return out;
  }
};

}  // namespace themis
