// JSON-RPC gateway: the client-facing surface of a consensus node.
//
// Translates HTTP requests into P2pNode calls.  The protocol is JSON-RPC
// 2.0-shaped: POST / with {"jsonrpc":"2.0","id":...,"method":...,"params":{}}
// answers {"result":...} or {"error":{"code","message"}} with the standard
// codes (-32700 parse error, -32600 invalid request, -32601 method not
// found, -32602 invalid params) plus application errors for rejected
// transactions.  GET /status and GET /metrics mirror the same-named methods
// for curl-friendly inspection.
//
// Methods:
//   submit_tx   {"raw": "<hex of 576-byte signed tx>"}  — pre-signed, or
//               {"sender":N,"to":N,"amount":N,"memo"?:s,"nonce"?:N}
//               (signed server-side with the consortium key; nonce defaults
//               to the node's next-nonce hint)  -> {"id", "status"}
//   submit_txs  {"txs": [<submit_tx params>, ...]} (<=512) — one combining
//               admission pass for the whole array
//               -> {"results": [{"id","status","nonce"}, ...]} in order
//   get_tx      {"id": "<hex>"}      -> state / block / confirmations / tx
//   get_txs     {"ids": ["<hex>", ...]} (<=4096)
//               -> {"states": ["unknown"|"pending"|"confirmed", ...]}
//   get_block   {"hash": "<hex>"} or {"height": N} -> header + tx ids
//   get_head    {}                   -> {"hash", "height"}
//   get_balance {"account": N}       -> {"balance", "next_nonce"}
//   get_checkpoint {"height"?: N}    -> finality certificate at the given
//               checkpoint height (latest when omitted): height / block /
//               epoch / backend / voters plus the raw hex encoding for
//               offline verification (themis-cli checkpoint)
//   status      {}                   -> node summary (head, peers, pool, ...)
//   metrics     {}                   -> chain + transport + rpc + stage
//                                       latency counters
//
// Monitoring endpoints (GET):
//   /status        — node summary (mirrors the status method)
//   /metrics       — JSON metrics (chain/tx/p2p/rpc/stages), for tooling
//                    that already speaks this shape (load_gen, themis-cli
//                    watch)
//   /metrics.prom  — Prometheus text exposition 0.0.4 of the node's live
//                    registry (counters, gauges, cumulative histograms)
//   /health        — readiness probe: 200 when started and peer-connected
//                    (or standalone), 503 otherwise; body carries uptime,
//                    peers and height
//
// The gateway is stateless and thread-safe: HttpServer calls handle() from
// many worker threads; every node interaction goes through P2pNode's own
// synchronized API.  Request accounting is mutex-free: per-method request /
// error counters and latency histograms live in the node's live registry
// (registered once at construction, bumped via cached pointers), so one
// scrape of /metrics.prom covers the RPC layer too.  Under
// THEMIS_MIN_TELEMETRY builds the bumps compile out and stats() reads zero.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>

#include "obs/live/registry.h"
#include "obs/observability.h"
#include "p2p/node.h"
#include "rpc/http_server.h"
#include "rpc/json.h"

namespace themis::rpc {

class Gateway {
 public:
  /// Registers the rpc metric families in node.live_registry().
  explicit Gateway(p2p::P2pNode& node);

  /// HttpServer handler: dispatches one HTTP request.
  HttpResponse handle(const HttpRequest& request);

  struct Stats {
    std::uint64_t requests = 0;
    std::uint64_t errors = 0;  ///< responses carrying a JSON-RPC error
  };
  Stats stats() const;
  /// Per-method request counts (copy; keyed by method name; unknown methods
  /// aggregate under "other").
  std::map<std::string, std::uint64_t> method_counts() const;

  /// Write rpc.* counters into an observability bundle.
  void fill_observability(obs::Observability& obs) const;

 private:
  /// Fixed method table: the hot path resolves the method name to a slot
  /// once and bumps cached pointers — no per-request map or mutex.
  enum class Method : std::size_t {
    submit_tx = 0,
    submit_txs,
    get_tx,
    get_txs,
    get_block,
    get_head,
    get_balance,
    get_checkpoint,
    status,
    metrics,
    other,  ///< unknown / unparseable method names
  };
  static constexpr std::size_t kMethodCount = 11;
  static Method method_of(const std::string& name);

  struct MethodMetrics {
    const char* name = "";
    obs::live::Counter* requests = nullptr;
    obs::live::Counter* errors = nullptr;
    obs::live::Histogram* latency = nullptr;
  };

  Json dispatch(const std::string& method, const Json& params);
  void note_error(Method method);
  HttpResponse health_response() const;

  /// Build one SignedTransaction from a submit spec ({"raw"} or structured
  /// {"sender","to","amount",...}); throws RpcError on malformed input.
  ledger::SignedTransaction build_tx(const Json& spec);

  Json rpc_submit_tx(const Json& params);
  Json rpc_submit_txs(const Json& params);
  Json rpc_get_tx(const Json& params);
  Json rpc_get_txs(const Json& params);
  Json rpc_get_block(const Json& params);
  Json rpc_get_head();
  Json rpc_get_balance(const Json& params);
  Json rpc_get_checkpoint(const Json& params);
  Json rpc_status();
  Json rpc_metrics();

  p2p::P2pNode& node_;
  std::array<MethodMetrics, kMethodCount> methods_{};
  obs::live::Counter* total_requests_ = nullptr;
  obs::live::Counter* total_errors_ = nullptr;
};

}  // namespace themis::rpc
