// JSON-RPC gateway: the client-facing surface of a consensus node.
//
// Translates HTTP requests into P2pNode calls.  The protocol is JSON-RPC
// 2.0-shaped: POST / with {"jsonrpc":"2.0","id":...,"method":...,"params":{}}
// answers {"result":...} or {"error":{"code","message"}} with the standard
// codes (-32700 parse error, -32600 invalid request, -32601 method not
// found, -32602 invalid params) plus application errors for rejected
// transactions.  GET /status and GET /metrics mirror the same-named methods
// for curl-friendly inspection.
//
// Methods:
//   submit_tx   {"raw": "<hex of 576-byte signed tx>"}  — pre-signed, or
//               {"sender":N,"to":N,"amount":N,"memo"?:s,"nonce"?:N}
//               (signed server-side with the consortium key; nonce defaults
//               to the node's next-nonce hint)  -> {"id", "status"}
//   submit_txs  {"txs": [<submit_tx params>, ...]} (<=512) — one combining
//               admission pass for the whole array
//               -> {"results": [{"id","status","nonce"}, ...]} in order
//   get_tx      {"id": "<hex>"}      -> state / block / confirmations / tx
//   get_txs     {"ids": ["<hex>", ...]} (<=4096)
//               -> {"states": ["unknown"|"pending"|"confirmed", ...]}
//   get_block   {"hash": "<hex>"} or {"height": N} -> header + tx ids
//   get_head    {}                   -> {"hash", "height"}
//   get_balance {"account": N}       -> {"balance", "next_nonce"}
//   status      {}                   -> node summary (head, peers, pool, ...)
//   metrics     {}                   -> chain + transport counters
//
// The gateway is stateless and thread-safe: HttpServer calls handle() from
// many worker threads; every node interaction goes through P2pNode's own
// synchronized API.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "obs/observability.h"
#include "p2p/node.h"
#include "rpc/http_server.h"
#include "rpc/json.h"

namespace themis::rpc {

class Gateway {
 public:
  explicit Gateway(p2p::P2pNode& node) : node_(node) {}

  /// HttpServer handler: dispatches one HTTP request.
  HttpResponse handle(const HttpRequest& request);

  struct Stats {
    std::uint64_t requests = 0;
    std::uint64_t errors = 0;  ///< responses carrying a JSON-RPC error
  };
  Stats stats() const;
  /// Per-method request counts (copy; keyed by method name).
  std::map<std::string, std::uint64_t> method_counts() const;

  /// Write rpc.* counters into an observability bundle.
  void fill_observability(obs::Observability& obs) const;

 private:
  Json dispatch(const std::string& method, const Json& params);
  void note_error();

  /// Build one SignedTransaction from a submit spec ({"raw"} or structured
  /// {"sender","to","amount",...}); throws RpcError on malformed input.
  ledger::SignedTransaction build_tx(const Json& spec);

  Json rpc_submit_tx(const Json& params);
  Json rpc_submit_txs(const Json& params);
  Json rpc_get_tx(const Json& params);
  Json rpc_get_txs(const Json& params);
  Json rpc_get_block(const Json& params);
  Json rpc_get_head();
  Json rpc_get_balance(const Json& params);
  Json rpc_status();
  Json rpc_metrics();

  p2p::P2pNode& node_;

  mutable std::mutex mu_;
  Stats stats_;
  std::map<std::string, std::uint64_t> method_counts_;
};

}  // namespace themis::rpc
