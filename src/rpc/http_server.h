// An epoll-reactor HTTP/1.1 server for the RPC gateway.
//
// One reactor thread owns every connection: it accepts non-blockingly,
// drives per-connection read/write buffers (partial reads AND partial
// writes) off an epoll set, and hands each fully-parsed request to a small
// worker pool so a handler that blocks — batched transaction admission
// waits on the combining leader — never parks the event loop.  Workers
// return the serialized response through a completion queue + eventfd;
// connections are keyed by id, so a connection dropped while its request
// is in flight simply orphans the completion instead of dangling a pointer.
//
// Written for untrusted clients:
//   * the request head (request line + headers) is capped (400 beyond it),
//   * bodies are capped at max_body_bytes (413 Payload Too Large),
//   * concurrent connections are capped (503 Service Unavailable, the
//     consortium analogue of load shedding),
//   * a connection that stalls mid-request (or mid-response) for one full
//     recv_timeout_ms is dropped by a periodic sweep (slowloris guard);
//     idle keep-alive connections survive indefinitely,
//   * while a request is being handled its connection stops reading
//     (EPOLLIN off) — one request in flight per connection, pipelined
//     keep-alive requests wait in the read buffer.
//
// Graceful shutdown: stop() wakes the reactor via the eventfd, joins it
// (closing every connection), then drains the worker pool — no handler
// outlives the server object.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/parallel.h"
#include "p2p/socket.h"

namespace themis::rpc {

struct HttpRequest {
  std::string method;  ///< "GET", "POST", ...
  std::string target;  ///< request path, e.g. "/" or "/status"
  /// Header fields, names lower-cased (HTTP headers are case-insensitive).
  std::map<std::string, std::string> headers;
  std::string body;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
};

struct HttpServerConfig {
  std::uint16_t port = 0;  ///< 0 = ephemeral (read back with port())
  std::size_t max_head_bytes = 8 * 1024;
  std::size_t max_body_bytes = 1 << 20;
  std::size_t max_connections = 64;
  /// Stall budget: a connection mid-request or mid-response that makes no
  /// progress for this long is dropped.  Idle keep-alive is exempt.
  int recv_timeout_ms = 10000;
  /// Handler worker threads.  More workers = more requests concurrently
  /// inside the handler = bigger admission batches under load.
  std::size_t workers = 8;
};

class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  HttpServer(HttpServerConfig config, Handler handler);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Bind + start the reactor.  False if the port cannot be bound.
  bool start();
  void stop();

  std::uint16_t port() const { return listener_.port(); }

  struct Stats {
    std::uint64_t connections_accepted = 0;
    std::uint64_t requests = 0;
    std::uint64_t bad_requests = 0;      ///< 400 (parse failures)
    std::uint64_t oversized_bodies = 0;  ///< 413
    std::uint64_t rejected_busy = 0;     ///< 503 (connection cap)
  };
  Stats stats() const;

 private:
  /// Connection lifecycle: reading a request, waiting on the handler,
  /// flushing the response, then back to reading (keep-alive) or gone.
  enum class ConnState { reading, dispatched, writing };

  struct Conn {
    std::uint64_t id = 0;
    p2p::TcpSocket socket;
    ConnState state = ConnState::reading;
    std::string in;   ///< bytes received, not yet consumed
    std::string out;  ///< response bytes not yet flushed
    std::size_t out_off = 0;
    bool close_after_write = false;
    bool peer_half_closed = false;  ///< recv saw EOF; respond, then drop
    /// Head parsed, collecting `content_length` body bytes into `in`.
    bool reading_body = false;
    HttpRequest request;
    std::size_t content_length = 0;
    /// Last read/write progress (steady ms), for the stall sweep.
    std::int64_t last_activity_ms = 0;
  };

  /// A worker-completed response on its way back to the reactor.
  struct Completion {
    std::uint64_t conn_id = 0;
    std::string bytes;
    bool close = false;
  };

  void reactor_loop();
  void accept_ready();
  /// Handle readability; false drops the connection.
  bool conn_readable(Conn& conn);
  /// Parse buffered bytes, dispatch a complete request, or emit an error
  /// response; false drops the connection.
  bool advance(Conn& conn);
  /// Flush pending response bytes; false drops the connection.
  bool flush(Conn& conn);
  /// Queue `response` on `conn` and switch it to writing.
  void start_write(Conn& conn, std::string bytes, bool close);
  void drop(std::uint64_t conn_id);
  void apply_completions();
  void sweep_stalled();
  void update_epoll(Conn& conn, bool want_read, bool want_write);
  std::int64_t now_ms() const;

  HttpServerConfig config_;
  Handler handler_;
  p2p::TcpListener listener_;

  int epoll_fd_ = -1;
  int event_fd_ = -1;
  std::thread reactor_thread_;
  std::atomic<bool> stopping_{false};
  bool started_ = false;

  /// Reactor-owned: only the reactor thread touches the map or any Conn.
  std::unordered_map<std::uint64_t, std::unique_ptr<Conn>> conns_;
  std::uint64_t next_conn_id_ = 2;  // 0 = listener, 1 = eventfd

  std::unique_ptr<TaskPool> pool_;
  std::mutex completions_mu_;
  std::vector<Completion> completions_;

  std::atomic<std::uint64_t> stat_connections_{0};
  std::atomic<std::uint64_t> stat_requests_{0};
  std::atomic<std::uint64_t> stat_bad_requests_{0};
  std::atomic<std::uint64_t> stat_oversized_{0};
  std::atomic<std::uint64_t> stat_busy_{0};
};

}  // namespace themis::rpc
