// A small multi-threaded HTTP/1.1 server for the RPC gateway.
//
// Thread-per-connection over the p2p socket primitives (TcpListener /
// TcpSocket): one accept thread hands each connection to a worker thread
// that parses requests and calls the installed handler.  The shape matches
// PeerManager's threading, so the daemon's two listening surfaces (p2p frames
// and HTTP) behave identically under start/stop.
//
// Written for untrusted clients:
//   * the request head (request line + headers) is capped (400 beyond it),
//   * bodies are capped at max_body (413 Payload Too Large),
//   * concurrent connections are capped (503 Service Unavailable, the
//     consortium analogue of load shedding),
//   * a connection that stalls mid-request is dropped on the next receive
//     timeout tick (slowloris guard); idle keep-alive connections survive.
//
// Graceful shutdown: stop() interrupts the accept loop, shuts every live
// connection socket down and joins all worker threads — no request thread
// outlives the server object.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "p2p/socket.h"

namespace themis::rpc {

struct HttpRequest {
  std::string method;  ///< "GET", "POST", ...
  std::string target;  ///< request path, e.g. "/" or "/status"
  /// Header fields, names lower-cased (HTTP headers are case-insensitive).
  std::map<std::string, std::string> headers;
  std::string body;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
};

struct HttpServerConfig {
  std::uint16_t port = 0;  ///< 0 = ephemeral (read back with port())
  std::size_t max_head_bytes = 8 * 1024;
  std::size_t max_body_bytes = 1 << 20;
  std::size_t max_connections = 64;
  /// Receive timeout tick; a connection stalled mid-request for one full
  /// tick is dropped.
  int recv_timeout_ms = 10000;
};

class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  HttpServer(HttpServerConfig config, Handler handler);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Bind + start accepting.  False if the port cannot be bound.
  bool start();
  void stop();

  std::uint16_t port() const { return listener_.port(); }

  struct Stats {
    std::uint64_t connections_accepted = 0;
    std::uint64_t requests = 0;
    std::uint64_t bad_requests = 0;      ///< 400 (parse failures)
    std::uint64_t oversized_bodies = 0;  ///< 413
    std::uint64_t rejected_busy = 0;     ///< 503 (connection cap)
  };
  Stats stats() const;

 private:
  struct Conn {
    p2p::TcpSocket socket;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void accept_loop();
  void serve(Conn* conn);
  /// Join and drop finished connections (called with conns_mu_ held).
  void reap_locked();

  HttpServerConfig config_;
  Handler handler_;
  p2p::TcpListener listener_;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};
  bool started_ = false;

  std::mutex conns_mu_;
  std::list<std::unique_ptr<Conn>> conns_;

  mutable std::mutex stats_mu_;
  Stats stats_;
};

}  // namespace themis::rpc
