#include "rpc/gateway.h"

#include <chrono>
#include <exception>
#include <utility>

#include "common/check.h"
#include "common/serialize.h"
#include "state/transfer.h"

namespace themis::rpc {

namespace {

// JSON-RPC 2.0 error codes.
constexpr int kParseError = -32700;
constexpr int kInvalidRequest = -32600;
constexpr int kMethodNotFound = -32601;
constexpr int kInvalidParams = -32602;
/// Application error: the node rejected the transaction (message carries
/// the TxAdmit reason).
constexpr int kTxRejected = -32000;

struct RpcError {
  int code;
  std::string message;
};

[[noreturn]] void fail(int code, std::string message) {
  throw RpcError{code, std::move(message)};
}

Json error_response(const Json& id, int code, const std::string& message) {
  Json error;
  error.set("code", static_cast<std::int64_t>(code));
  error.set("message", message);
  Json response;
  response.set("jsonrpc", "2.0");
  response.set("id", id);
  response.set("error", std::move(error));
  return response;
}

Json result_response(const Json& id, Json result) {
  Json response;
  response.set("jsonrpc", "2.0");
  response.set("id", id);
  response.set("result", std::move(result));
  return response;
}

ledger::TxId txid_param(const Json& params, const std::string& key) {
  if (!params[key].is_string()) fail(kInvalidParams, key + " must be a hex string");
  try {
    return hash_from_hex(params[key].as_string());
  } catch (const std::exception&) {
    fail(kInvalidParams, key + " is not a 64-char hex id");
  }
}

Json tx_to_json(const ledger::Transaction& tx) {
  Json out;
  out.set("id", to_hex(tx.id()));
  out.set("sender", static_cast<std::uint64_t>(tx.sender()));
  out.set("nonce", tx.nonce());
  out.set("timestamp_nanos", static_cast<std::int64_t>(tx.timestamp_nanos()));
  if (const auto transfer = state::transfer_of(tx); transfer.has_value()) {
    out.set("to", static_cast<std::uint64_t>(transfer->to));
    out.set("amount", transfer->amount);
    if (!transfer->memo.empty()) {
      out.set("memo", std::string(transfer->memo.begin(), transfer->memo.end()));
    }
  }
  return out;
}

Json block_to_json(const p2p::P2pNode::BlockInfo& info) {
  const ledger::Block& block = *info.block;
  Json out;
  out.set("hash", to_hex(block.id()));
  out.set("height", block.header().height);
  out.set("prev", to_hex(block.header().prev));
  out.set("producer", static_cast<std::uint64_t>(block.header().producer));
  out.set("timestamp_nanos",
          static_cast<std::int64_t>(block.header().timestamp_nanos));
  out.set("tx_count", static_cast<std::uint64_t>(block.header().tx_count));
  out.set("on_main_chain", info.on_main_chain);
  out.set("confirmations", info.confirmations);
  Json::Array txs;
  txs.reserve(block.transactions().size());
  for (const ledger::Transaction& tx : block.transactions()) {
    txs.push_back(Json(to_hex(tx.id())));
  }
  out.set("txs", Json(std::move(txs)));
  return out;
}

}  // namespace

HttpResponse Gateway::handle(const HttpRequest& request) {
  // curl-friendly GET mirrors.
  if (request.method == "GET") {
    HttpResponse response;
    if (request.target == "/status") {
      response.body = rpc_status().dump();
    } else if (request.target == "/metrics") {
      response.body = rpc_metrics().dump();
    } else {
      response.status = 404;
      response.body = "{\"error\":\"not found\"}";
    }
    return response;
  }
  if (request.method != "POST") {
    HttpResponse response;
    response.status = 405;
    response.body = "{\"error\":\"method not allowed\"}";
    return response;
  }

  // JSON-RPC over POST.  Errors are JSON-RPC errors with HTTP 200, per the
  // convention (the HTTP layer succeeded; the call did not).
  HttpResponse response;
  Json id;  // null until we manage to parse one
  Json body;
  try {
    body = Json::parse(request.body);
  } catch (const JsonError& e) {
    response.body =
        error_response(id, kParseError, std::string("parse error: ") + e.what())
            .dump();
    note_error();
    return response;
  }
  if (!body.is_object() || !body["method"].is_string()) {
    response.body =
        error_response(body["id"], kInvalidRequest,
                       "expected {\"method\": ..., \"params\": ...}")
            .dump();
    note_error();
    return response;
  }
  id = body["id"];
  const std::string& method = body["method"].as_string();
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.requests;
    ++method_counts_[method];
  }
  try {
    response.body = result_response(id, dispatch(method, body["params"])).dump();
  } catch (const RpcError& e) {
    response.body = error_response(id, e.code, e.message).dump();
    note_error();
  } catch (const JsonError& e) {
    response.body =
        error_response(id, kInvalidParams, std::string("invalid params: ") + e.what())
            .dump();
    note_error();
  }
  return response;
}

Json Gateway::dispatch(const std::string& method, const Json& params) {
  if (method == "submit_tx") return rpc_submit_tx(params);
  if (method == "get_tx") return rpc_get_tx(params);
  if (method == "submit_txs") return rpc_submit_txs(params);
  if (method == "get_txs") return rpc_get_txs(params);
  if (method == "get_block") return rpc_get_block(params);
  if (method == "get_head") return rpc_get_head();
  if (method == "get_balance") return rpc_get_balance(params);
  if (method == "status") return rpc_status();
  if (method == "metrics") return rpc_metrics();
  fail(kMethodNotFound, "unknown method: " + method);
}

ledger::SignedTransaction Gateway::build_tx(const Json& spec) {
  if (!spec.is_object()) fail(kInvalidParams, "params must be an object");

  ledger::SignedTransaction stx;
  if (spec.has("raw")) {
    // Pre-signed 576-byte transaction, hex-encoded.
    if (!spec["raw"].is_string()) fail(kInvalidParams, "raw must be hex");
    Bytes bytes;
    try {
      bytes = from_hex(spec["raw"].as_string());
    } catch (const std::exception&) {
      fail(kInvalidParams, "raw is not valid hex");
    }
    try {
      stx = ledger::SignedTransaction::decode(bytes);
    } catch (const DecodeError& e) {
      fail(kInvalidParams, std::string("malformed transaction: ") + e.what());
    }
  } else {
    // Structured transfer, signed here with the consortium key (the gateway
    // runs inside the consortium node, so it holds the deterministic keys).
    if (!spec["sender"].is_number() || !spec["to"].is_number() ||
        !spec["amount"].is_number()) {
      fail(kInvalidParams, "need sender, to, amount (or raw)");
    }
    const auto sender = static_cast<ledger::NodeId>(spec["sender"].as_u64());
    state::Transfer transfer;
    transfer.to = static_cast<ledger::NodeId>(spec["to"].as_u64());
    transfer.amount = spec["amount"].as_u64();
    if (spec.has("memo")) {
      const std::string& memo = spec["memo"].as_string();
      transfer.memo.assign(memo.begin(), memo.end());
    }
    const std::uint64_t nonce = spec.has("nonce")
                                    ? spec["nonce"].as_u64()
                                    : node_.next_nonce_hint(sender);
    const std::int64_t now =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count();
    try {
      stx = ledger::sign_transaction(
          state::make_transfer_tx(sender, nonce, now, transfer));
    } catch (const std::exception& e) {
      fail(kInvalidParams, std::string("cannot build transaction: ") + e.what());
    }
  }
  return stx;
}

Json Gateway::rpc_submit_tx(const Json& params) {
  const ledger::SignedTransaction stx = build_tx(params);
  const p2p::TxAdmit admit = node_.submit_transaction(stx);
  if (admit != p2p::TxAdmit::accepted &&
      admit != p2p::TxAdmit::duplicate) {
    fail(kTxRejected, std::string(to_string(admit)));
  }
  Json out;
  out.set("id", to_hex(stx.tx.id()));
  out.set("status", std::string(to_string(admit)));
  out.set("nonce", stx.tx.nonce());
  return out;
}

Json Gateway::rpc_submit_txs(const Json& params) {
  // Batched submission: every transaction in the array is built (signed
  // server-side or decoded from raw) and the whole vector enters admission
  // as one combining-queue pass — one Schnorr verification batch, one
  // stateful lock hold — instead of one HTTP round trip per transfer.
  // Per-item verdicts come back in request order; a rejection does not fail
  // the call, so a client can retry just the rejected entries.
  if (!params["txs"].is_array()) fail(kInvalidParams, "txs must be an array");
  const Json::Array& specs = params["txs"].as_array();
  constexpr std::size_t kMaxSubmitTxs = 512;
  if (specs.size() > kMaxSubmitTxs) {
    fail(kInvalidParams, "at most 512 txs per submit_txs call");
  }
  std::vector<ledger::SignedTransaction> stxs;
  stxs.reserve(specs.size());
  for (const Json& spec : specs) stxs.push_back(build_tx(spec));

  const std::vector<p2p::TxAdmit> verdicts = node_.submit_transactions(stxs);
  Json::Array results;
  results.reserve(stxs.size());
  for (std::size_t i = 0; i < stxs.size(); ++i) {
    Json entry;
    entry.set("id", to_hex(stxs[i].tx.id()));
    entry.set("status", std::string(to_string(verdicts[i])));
    entry.set("nonce", stxs[i].tx.nonce());
    results.push_back(std::move(entry));
  }
  Json out;
  out.set("results", Json(std::move(results)));
  return out;
}

Json Gateway::rpc_get_tx(const Json& params) {
  const ledger::TxId id = txid_param(params, "id");
  const auto status = node_.tx_status(id);
  Json out;
  switch (status.state) {
    case p2p::P2pNode::TxStatusInfo::State::unknown:
      out.set("state", "unknown");
      break;
    case p2p::P2pNode::TxStatusInfo::State::pending:
      out.set("state", "pending");
      break;
    case p2p::P2pNode::TxStatusInfo::State::confirmed:
      out.set("state", "confirmed");
      out.set("block", to_hex(*status.block));
      out.set("block_height", status.block_height);
      out.set("confirmations", status.confirmations);
      break;
  }
  if (status.tx.has_value()) out.set("tx", tx_to_json(*status.tx));
  return out;
}

Json Gateway::rpc_get_txs(const Json& params) {
  // Batched status poll: one request resolves many ids, so a client waiting
  // on hundreds of submissions costs one HTTP round trip per sweep instead
  // of one per transaction.  Response states align with the request order.
  if (!params["ids"].is_array()) fail(kInvalidParams, "ids must be an array");
  const Json::Array& ids = params["ids"].as_array();
  constexpr std::size_t kMaxStatusIds = 4096;
  if (ids.size() > kMaxStatusIds) {
    fail(kInvalidParams, "at most 4096 ids per get_txs call");
  }
  Json::Array states;
  states.reserve(ids.size());
  for (const Json& raw : ids) {
    ledger::TxId id{};
    if (!raw.is_string()) fail(kInvalidParams, "ids must be hex strings");
    try {
      id = hash_from_hex(raw.as_string());
    } catch (const std::exception&) {
      fail(kInvalidParams, "ids must be 64-char hex ids");
    }
    const auto status = node_.tx_status(id);
    switch (status.state) {
      case p2p::P2pNode::TxStatusInfo::State::unknown:
        states.push_back(Json("unknown"));
        break;
      case p2p::P2pNode::TxStatusInfo::State::pending:
        states.push_back(Json("pending"));
        break;
      case p2p::P2pNode::TxStatusInfo::State::confirmed:
        states.push_back(Json("confirmed"));
        break;
    }
  }
  Json out;
  out.set("states", Json(std::move(states)));
  return out;
}

Json Gateway::rpc_get_block(const Json& params) {
  std::optional<p2p::P2pNode::BlockInfo> info;
  if (params.has("hash")) {
    info = node_.block_info(txid_param(params, "hash"));
  } else if (params["height"].is_number()) {
    info = node_.block_info_at(params["height"].as_u64());
  } else {
    fail(kInvalidParams, "need hash or height");
  }
  if (!info.has_value()) fail(kTxRejected, "block not found");
  return block_to_json(*info);
}

Json Gateway::rpc_get_head() {
  Json out;
  out.set("hash", to_hex(node_.head()));
  out.set("height", node_.head_height());
  return out;
}

Json Gateway::rpc_get_balance(const Json& params) {
  if (!params["account"].is_number()) {
    fail(kInvalidParams, "need account (node id)");
  }
  const auto account =
      static_cast<ledger::NodeId>(params["account"].as_u64());
  const auto info = node_.account_info(account);
  Json out;
  out.set("account", static_cast<std::uint64_t>(account));
  out.set("balance", info.balance);
  out.set("next_nonce", info.next_nonce);
  return out;
}

Json Gateway::rpc_status() {
  const auto chain = node_.chain_stats();
  Json out;
  out.set("node", static_cast<std::uint64_t>(node_.config().id));
  out.set("head", to_hex(node_.head()));
  out.set("height", node_.head_height());
  out.set("peers", node_.ready_peer_count());
  out.set("pool_depth", node_.pool_depth());
  out.set("mining", node_.mining());
  out.set("tree_blocks", node_.tree_blocks());
  out.set("txs_confirmed", chain.txs_confirmed);
  return out;
}

Json Gateway::rpc_metrics() {
  const auto chain = node_.chain_stats();
  const auto transport = node_.transport_stats();
  Json out;
  out.set("chain", Json::object({
    {"height", Json(node_.head_height())},
    {"tree_blocks", Json(node_.tree_blocks())},
    {"blocks_produced", Json(chain.blocks_produced)},
    {"blocks_rejected", Json(chain.blocks_rejected)},
    {"reorgs", Json(chain.reorgs)},
  }));
  out.set("tx", Json::object({
    {"submitted", Json(chain.txs_submitted)},
    {"accepted", Json(chain.txs_accepted)},
    {"rejected", Json(chain.txs_rejected)},
    {"duplicate", Json(chain.txs_duplicate)},
    {"relayed", Json(chain.txs_relayed)},
    {"received", Json(chain.txs_received)},
    {"confirmed", Json(chain.txs_confirmed)},
    {"returned", Json(chain.txs_returned)},
    {"purged", Json(chain.txs_purged)},
    {"pool_depth", Json(node_.pool_depth())},
  }));
  out.set("p2p", Json::object({
    {"bytes_in", Json(transport.bytes_in)},
    {"bytes_out", Json(transport.bytes_out)},
    {"peers", Json(node_.ready_peer_count())},
  }));
  const Stats rpc = stats();
  out.set("rpc", Json::object({
    {"requests", Json(rpc.requests)},
    {"errors", Json(rpc.errors)},
  }));
  return out;
}

void Gateway::note_error() {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.errors;
}

Gateway::Stats Gateway::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::map<std::string, std::uint64_t> Gateway::method_counts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return method_counts_;
}

void Gateway::fill_observability(obs::Observability& obs) const {
  std::lock_guard<std::mutex> lock(mu_);
  obs.counters.counter("rpc.requests") = stats_.requests;
  obs.counters.counter("rpc.errors") = stats_.errors;
  for (const auto& [method, count] : method_counts_) {
    obs.counters.counter("rpc.method." + method) = count;
  }
}

}  // namespace themis::rpc
