#include "rpc/gateway.h"

#include <chrono>
#include <exception>
#include <utility>

#include "common/check.h"
#include "common/serialize.h"
#include "obs/live/prometheus.h"
#include "obs/live/stage_tracker.h"
#include "state/transfer.h"

namespace themis::rpc {

namespace {

// JSON-RPC 2.0 error codes.
constexpr int kParseError = -32700;
constexpr int kInvalidRequest = -32600;
constexpr int kMethodNotFound = -32601;
constexpr int kInvalidParams = -32602;
/// Application error: the node rejected the transaction (message carries
/// the TxAdmit reason).
constexpr int kTxRejected = -32000;

struct RpcError {
  int code;
  std::string message;
};

[[noreturn]] void fail(int code, std::string message) {
  throw RpcError{code, std::move(message)};
}

Json error_response(const Json& id, int code, const std::string& message) {
  Json error;
  error.set("code", static_cast<std::int64_t>(code));
  error.set("message", message);
  Json response;
  response.set("jsonrpc", "2.0");
  response.set("id", id);
  response.set("error", std::move(error));
  return response;
}

Json result_response(const Json& id, Json result) {
  Json response;
  response.set("jsonrpc", "2.0");
  response.set("id", id);
  response.set("result", std::move(result));
  return response;
}

ledger::TxId txid_param(const Json& params, const std::string& key) {
  if (!params[key].is_string()) fail(kInvalidParams, key + " must be a hex string");
  try {
    return hash_from_hex(params[key].as_string());
  } catch (const std::exception&) {
    fail(kInvalidParams, key + " is not a 64-char hex id");
  }
}

Json tx_to_json(const ledger::Transaction& tx) {
  Json out;
  out.set("id", to_hex(tx.id()));
  out.set("sender", static_cast<std::uint64_t>(tx.sender()));
  out.set("nonce", tx.nonce());
  out.set("timestamp_nanos", static_cast<std::int64_t>(tx.timestamp_nanos()));
  if (const auto transfer = state::transfer_of(tx); transfer.has_value()) {
    out.set("to", static_cast<std::uint64_t>(transfer->to));
    // Mirror build_tx: u64-range amounts stay JSON numbers, larger ones are
    // exact decimal strings.
    if (transfer->amount.fits_u64()) {
      out.set("amount", transfer->amount.lo());
    } else {
      out.set("amount", transfer->amount.to_decimal());
    }
    if (!transfer->memo.empty()) {
      out.set("memo", std::string(transfer->memo.begin(), transfer->memo.end()));
    }
  }
  return out;
}

Json block_to_json(const p2p::P2pNode::BlockInfo& info) {
  const ledger::Block& block = *info.block;
  Json out;
  out.set("hash", to_hex(block.id()));
  out.set("height", block.header().height);
  out.set("prev", to_hex(block.header().prev));
  out.set("producer", static_cast<std::uint64_t>(block.header().producer));
  out.set("timestamp_nanos",
          static_cast<std::int64_t>(block.header().timestamp_nanos));
  out.set("tx_count", static_cast<std::uint64_t>(block.header().tx_count));
  out.set("on_main_chain", info.on_main_chain);
  out.set("confirmations", info.confirmations);
  Json::Array txs;
  txs.reserve(block.transactions().size());
  for (const ledger::Transaction& tx : block.transactions()) {
    txs.push_back(Json(to_hex(tx.id())));
  }
  out.set("txs", Json(std::move(txs)));
  return out;
}

}  // namespace

Gateway::Gateway(p2p::P2pNode& node) : node_(node) {
  static constexpr const char* kMethodNames[kMethodCount] = {
      "submit_tx", "submit_txs",  "get_tx",         "get_txs",
      "get_block", "get_head",    "get_balance",    "get_checkpoint",
      "status",    "metrics",     "other"};
  obs::live::Registry& r = node_.live_registry();
  for (std::size_t i = 0; i < kMethodCount; ++i) {
    MethodMetrics& m = methods_[i];
    m.name = kMethodNames[i];
    const std::string label = std::string("{method=\"") + m.name + "\"}";
    m.requests = &r.counter(std::string("themis_rpc_requests_total") + label,
                            "JSON-RPC requests by method.");
    m.errors = &r.counter(std::string("themis_rpc_errors_total") + label,
                          "JSON-RPC error responses by method.");
    m.latency = &r.histogram(std::string("themis_rpc_seconds") + label,
                             "JSON-RPC dispatch latency by method.");
  }
  total_requests_ =
      &r.counter("themis_rpc_requests_all_total", "JSON-RPC requests, total.");
  total_errors_ = &r.counter("themis_rpc_errors_all_total",
                             "JSON-RPC error responses, total.");
}

Gateway::Method Gateway::method_of(const std::string& name) {
  if (name == "submit_tx") return Method::submit_tx;
  if (name == "submit_txs") return Method::submit_txs;
  if (name == "get_tx") return Method::get_tx;
  if (name == "get_txs") return Method::get_txs;
  if (name == "get_block") return Method::get_block;
  if (name == "get_head") return Method::get_head;
  if (name == "get_balance") return Method::get_balance;
  if (name == "get_checkpoint") return Method::get_checkpoint;
  if (name == "status") return Method::status;
  if (name == "metrics") return Method::metrics;
  return Method::other;
}

HttpResponse Gateway::health_response() const {
  const bool ready = node_.ready();
  HttpResponse response;
  response.status = ready ? 200 : 503;
  Json out;
  out.set("status", ready ? "ok" : "unavailable");
  out.set("uptime_seconds", node_.uptime_seconds());
  out.set("peers", node_.ready_peer_count());
  out.set("height", node_.head_height());
  response.body = out.dump();
  return response;
}

HttpResponse Gateway::handle(const HttpRequest& request) {
  // curl-friendly GET mirrors + monitoring endpoints.
  if (request.method == "GET") {
    HttpResponse response;
    if (request.target == "/status") {
      response.body = rpc_status().dump();
    } else if (request.target == "/metrics") {
      response.body = rpc_metrics().dump();
    } else if (request.target == "/metrics.prom") {
      response.content_type = "text/plain; version=0.0.4; charset=utf-8";
      response.body = obs::live::render_prometheus(node_.live_registry());
    } else if (request.target == "/health") {
      response = health_response();
    } else {
      response.status = 404;
      response.body = "{\"error\":\"not found\"}";
    }
    return response;
  }
  if (request.method != "POST") {
    HttpResponse response;
    response.status = 405;
    response.body = "{\"error\":\"method not allowed\"}";
    return response;
  }

  // JSON-RPC over POST.  Errors are JSON-RPC errors with HTTP 200, per the
  // convention (the HTTP layer succeeded; the call did not).
  HttpResponse response;
  Json id;  // null until we manage to parse one
  Json body;
  try {
    body = Json::parse(request.body);
  } catch (const JsonError& e) {
    response.body =
        error_response(id, kParseError, std::string("parse error: ") + e.what())
            .dump();
    note_error(Method::other);
    return response;
  }
  if (!body.is_object() || !body["method"].is_string()) {
    response.body =
        error_response(body["id"], kInvalidRequest,
                       "expected {\"method\": ..., \"params\": ...}")
            .dump();
    note_error(Method::other);
    return response;
  }
  id = body["id"];
  const std::string& method = body["method"].as_string();
  const Method slot = method_of(method);
  MethodMetrics& metrics = methods_[static_cast<std::size_t>(slot)];
  metrics.requests->inc();
  total_requests_->inc();
  obs::live::ScopedTimer timer(metrics.latency);
  try {
    response.body = result_response(id, dispatch(method, body["params"])).dump();
  } catch (const RpcError& e) {
    response.body = error_response(id, e.code, e.message).dump();
    note_error(slot);
  } catch (const JsonError& e) {
    response.body =
        error_response(id, kInvalidParams, std::string("invalid params: ") + e.what())
            .dump();
    note_error(slot);
  }
  return response;
}

Json Gateway::dispatch(const std::string& method, const Json& params) {
  if (method == "submit_tx") return rpc_submit_tx(params);
  if (method == "get_tx") return rpc_get_tx(params);
  if (method == "submit_txs") return rpc_submit_txs(params);
  if (method == "get_txs") return rpc_get_txs(params);
  if (method == "get_block") return rpc_get_block(params);
  if (method == "get_head") return rpc_get_head();
  if (method == "get_balance") return rpc_get_balance(params);
  if (method == "get_checkpoint") return rpc_get_checkpoint(params);
  if (method == "status") return rpc_status();
  if (method == "metrics") return rpc_metrics();
  fail(kMethodNotFound, "unknown method: " + method);
}

ledger::SignedTransaction Gateway::build_tx(const Json& spec) {
  if (!spec.is_object()) fail(kInvalidParams, "params must be an object");

  ledger::SignedTransaction stx;
  if (spec.has("raw")) {
    // Pre-signed 576-byte transaction, hex-encoded.
    if (!spec["raw"].is_string()) fail(kInvalidParams, "raw must be hex");
    Bytes bytes;
    try {
      bytes = from_hex(spec["raw"].as_string());
    } catch (const std::exception&) {
      fail(kInvalidParams, "raw is not valid hex");
    }
    try {
      stx = ledger::SignedTransaction::decode(bytes);
    } catch (const DecodeError& e) {
      fail(kInvalidParams, std::string("malformed transaction: ") + e.what());
    }
  } else {
    // Structured transfer, signed here with the consortium key (the gateway
    // runs inside the consortium node, so it holds the deterministic keys).
    if (!spec["sender"].is_number() || !spec["to"].is_number() ||
        (!spec["amount"].is_number() && !spec["amount"].is_string())) {
      fail(kInvalidParams, "need sender, to, amount (or raw)");
    }
    const auto sender = static_cast<ledger::NodeId>(spec["sender"].as_u64());
    state::Transfer transfer;
    transfer.to = static_cast<ledger::NodeId>(spec["to"].as_u64());
    // Amounts above 2^64 - 1 do not fit a JSON number our codec accepts
    // exactly, so large amounts travel as decimal strings.  from_decimal is
    // strict: digits only, value < 2^128.
    if (spec["amount"].is_string()) {
      const auto amount = UInt128::from_decimal(spec["amount"].as_string());
      if (!amount.has_value()) {
        fail(kInvalidParams, "amount must be a decimal string < 2^128");
      }
      transfer.amount = *amount;
    } else {
      transfer.amount = spec["amount"].as_u64();
    }
    if (spec.has("memo")) {
      const std::string& memo = spec["memo"].as_string();
      transfer.memo.assign(memo.begin(), memo.end());
    }
    const std::uint64_t nonce = spec.has("nonce")
                                    ? spec["nonce"].as_u64()
                                    : node_.next_nonce_hint(sender);
    const std::int64_t now =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count();
    try {
      stx = ledger::sign_transaction(
          state::make_transfer_tx(sender, nonce, now, transfer));
    } catch (const std::exception& e) {
      fail(kInvalidParams, std::string("cannot build transaction: ") + e.what());
    }
  }
  return stx;
}

Json Gateway::rpc_submit_tx(const Json& params) {
  const ledger::SignedTransaction stx = build_tx(params);
  const p2p::TxAdmit admit = node_.submit_transaction(stx);
  if (admit != p2p::TxAdmit::accepted &&
      admit != p2p::TxAdmit::duplicate) {
    fail(kTxRejected, std::string(to_string(admit)));
  }
  Json out;
  out.set("id", to_hex(stx.tx.id()));
  out.set("status", std::string(to_string(admit)));
  out.set("nonce", stx.tx.nonce());
  return out;
}

Json Gateway::rpc_submit_txs(const Json& params) {
  // Batched submission: every transaction in the array is built (signed
  // server-side or decoded from raw) and the whole vector enters admission
  // as one combining-queue pass — one Schnorr verification batch, one
  // stateful lock hold — instead of one HTTP round trip per transfer.
  // Per-item verdicts come back in request order; a rejection does not fail
  // the call, so a client can retry just the rejected entries.
  if (!params["txs"].is_array()) fail(kInvalidParams, "txs must be an array");
  const Json::Array& specs = params["txs"].as_array();
  constexpr std::size_t kMaxSubmitTxs = 512;
  if (specs.size() > kMaxSubmitTxs) {
    fail(kInvalidParams, "at most 512 txs per submit_txs call");
  }
  std::vector<ledger::SignedTransaction> stxs;
  stxs.reserve(specs.size());
  for (const Json& spec : specs) stxs.push_back(build_tx(spec));

  const std::vector<p2p::TxAdmit> verdicts = node_.submit_transactions(stxs);
  Json::Array results;
  results.reserve(stxs.size());
  for (std::size_t i = 0; i < stxs.size(); ++i) {
    Json entry;
    entry.set("id", to_hex(stxs[i].tx.id()));
    entry.set("status", std::string(to_string(verdicts[i])));
    entry.set("nonce", stxs[i].tx.nonce());
    results.push_back(std::move(entry));
  }
  Json out;
  out.set("results", Json(std::move(results)));
  return out;
}

Json Gateway::rpc_get_tx(const Json& params) {
  const ledger::TxId id = txid_param(params, "id");
  const auto status = node_.tx_status(id);
  Json out;
  switch (status.state) {
    case p2p::P2pNode::TxStatusInfo::State::unknown:
      out.set("state", "unknown");
      break;
    case p2p::P2pNode::TxStatusInfo::State::pending:
      out.set("state", "pending");
      break;
    case p2p::P2pNode::TxStatusInfo::State::confirmed:
      out.set("state", "confirmed");
      out.set("block", to_hex(*status.block));
      out.set("block_height", status.block_height);
      out.set("confirmations", status.confirmations);
      break;
  }
  if (status.tx.has_value()) out.set("tx", tx_to_json(*status.tx));
  // Per-tx lifecycle stamps while the stage tracker remembers the id:
  // monotonic nanoseconds since an arbitrary per-process epoch, so deltas
  // between stages are meaningful but absolute values are not.
  if (const auto stamps = node_.stage_tracker().stamps(id);
      stamps.has_value()) {
    Json stages;
    for (std::size_t s = 0; s < obs::live::kTxStageCount; ++s) {
      if ((*stamps)[s] == 0) continue;
      stages.set(
          std::string(obs::live::to_string(static_cast<obs::live::TxStage>(s))),
          Json((*stamps)[s]));
    }
    out.set("stages", std::move(stages));
  }
  return out;
}

Json Gateway::rpc_get_txs(const Json& params) {
  // Batched status poll: one request resolves many ids, so a client waiting
  // on hundreds of submissions costs one HTTP round trip per sweep instead
  // of one per transaction.  Response states align with the request order.
  if (!params["ids"].is_array()) fail(kInvalidParams, "ids must be an array");
  const Json::Array& ids = params["ids"].as_array();
  constexpr std::size_t kMaxStatusIds = 4096;
  if (ids.size() > kMaxStatusIds) {
    fail(kInvalidParams, "at most 4096 ids per get_txs call");
  }
  Json::Array states;
  states.reserve(ids.size());
  for (const Json& raw : ids) {
    ledger::TxId id{};
    if (!raw.is_string()) fail(kInvalidParams, "ids must be hex strings");
    try {
      id = hash_from_hex(raw.as_string());
    } catch (const std::exception&) {
      fail(kInvalidParams, "ids must be 64-char hex ids");
    }
    const auto status = node_.tx_status(id);
    switch (status.state) {
      case p2p::P2pNode::TxStatusInfo::State::unknown:
        states.push_back(Json("unknown"));
        break;
      case p2p::P2pNode::TxStatusInfo::State::pending:
        states.push_back(Json("pending"));
        break;
      case p2p::P2pNode::TxStatusInfo::State::confirmed:
        states.push_back(Json("confirmed"));
        break;
    }
  }
  Json out;
  out.set("states", Json(std::move(states)));
  return out;
}

Json Gateway::rpc_get_block(const Json& params) {
  std::optional<p2p::P2pNode::BlockInfo> info;
  if (params.has("hash")) {
    info = node_.block_info(txid_param(params, "hash"));
  } else if (params["height"].is_number()) {
    info = node_.block_info_at(params["height"].as_u64());
  } else {
    fail(kInvalidParams, "need hash or height");
  }
  if (!info.has_value()) fail(kTxRejected, "block not found");
  return block_to_json(*info);
}

Json Gateway::rpc_get_head() {
  Json out;
  out.set("hash", to_hex(node_.head()));
  out.set("height", node_.head_height());
  return out;
}

Json Gateway::rpc_get_balance(const Json& params) {
  if (!params["account"].is_number()) {
    fail(kInvalidParams, "need account (node id)");
  }
  const auto account =
      static_cast<ledger::NodeId>(params["account"].as_u64());
  Json out;
  out.set("account", static_cast<std::uint64_t>(account));
  // 128-bit balances travel as exact decimal strings: the JSON codec only
  // represents integers up to 64 bits without loss, and a double would
  // silently round anything past 2^53.
  if (params.has("prove") && params["prove"].is_bool() &&
      params["prove"].as_bool()) {
    const auto bp = node_.balance_proof(account);
    out.set("balance", bp.account.balance.to_decimal());
    out.set("next_nonce", bp.account.next_nonce);
    out.set("state_root", to_hex(bp.state_root));
    out.set("head", to_hex(bp.head));
    out.set("height", bp.height);
    Json proof;
    proof.set("available", bp.available);
    proof.set("page", static_cast<std::uint64_t>(bp.proof.page));
    proof.set("page_count", static_cast<std::uint64_t>(bp.proof.page_count));
    proof.set("page_bytes", to_hex(bp.proof.page_bytes));
    Json::Array steps;
    steps.reserve(bp.proof.steps.size());
    for (const crypto::MerkleStep& step : bp.proof.steps) {
      Json entry;
      entry.set("sibling", to_hex(step.sibling));
      entry.set("left", step.sibling_on_left);
      steps.push_back(std::move(entry));
    }
    proof.set("steps", Json(std::move(steps)));
    out.set("proof", std::move(proof));
    return out;
  }
  const auto info = node_.account_info(account);
  out.set("balance", info.balance.to_decimal());
  out.set("next_nonce", info.next_nonce);
  return out;
}

Json Gateway::rpc_get_checkpoint(const Json& params) {
  const auto fin = node_.finality_info();
  if (!fin.enabled) fail(kTxRejected, "finality overlay disabled");
  std::uint64_t height = fin.finalized_height;
  if (params.is_object() && params.has("height")) {
    if (!params["height"].is_number()) fail(kInvalidParams, "height must be a number");
    height = params["height"].as_u64();
  }
  const auto cert = node_.checkpoint_certificate(height);
  if (!cert.has_value()) fail(kTxRejected, "no certificate at that height");
  Json out;
  out.set("height", cert->height);
  out.set("block", to_hex(cert->block));
  out.set("epoch", cert->epoch);
  out.set("backend", static_cast<std::uint64_t>(cert->backend));
  Json::Array voters;
  voters.reserve(cert->voters.size());
  for (const ledger::NodeId voter : cert->voters) {
    voters.push_back(Json(static_cast<std::uint64_t>(voter)));
  }
  out.set("voters", Json(std::move(voters)));
  out.set("aggregate", to_hex(cert->aggregate));
  // Full wire encoding so clients can re-verify offline (themis-cli
  // checkpoint) without reassembling the certificate field by field.
  out.set("raw", to_hex(cert->encode()));
  return out;
}

Json Gateway::rpc_status() {
  const auto chain = node_.chain_stats();
  Json out;
  out.set("node", static_cast<std::uint64_t>(node_.config().id));
  out.set("head", to_hex(node_.head()));
  out.set("height", node_.head_height());
  out.set("peers", node_.ready_peer_count());
  out.set("pool_depth", node_.pool_depth());
  out.set("mining", node_.mining());
  out.set("tree_blocks", node_.tree_blocks());
  out.set("txs_confirmed", chain.txs_confirmed);
  out.set("state_root", to_hex(node_.head_state_root()));
  out.set("total_supply", node_.total_supply().to_decimal());
  out.set("snapshot_height", chain.snapshot_height);
  out.set("snapshots_written", chain.snapshots_written);
  out.set("blocks_pruned", chain.blocks_pruned);
  out.set("restored_from_snapshot", chain.restored_from_snapshot);
  const auto fin = node_.finality_info();
  out.set("finality_enabled", fin.enabled);
  out.set("finalized_height", fin.finalized_height);
  out.set("finality_lag", fin.lag);
  return out;
}

Json Gateway::rpc_metrics() {
  const auto chain = node_.chain_stats();
  const auto transport = node_.transport_stats();
  Json out;
  out.set("chain", Json::object({
    {"height", Json(node_.head_height())},
    {"tree_blocks", Json(node_.tree_blocks())},
    {"blocks_produced", Json(chain.blocks_produced)},
    {"blocks_rejected", Json(chain.blocks_rejected)},
    {"reorgs", Json(chain.reorgs)},
  }));
  out.set("tx", Json::object({
    {"submitted", Json(chain.txs_submitted)},
    {"accepted", Json(chain.txs_accepted)},
    {"rejected", Json(chain.txs_rejected)},
    {"duplicate", Json(chain.txs_duplicate)},
    {"relayed", Json(chain.txs_relayed)},
    {"received", Json(chain.txs_received)},
    {"confirmed", Json(chain.txs_confirmed)},
    {"returned", Json(chain.txs_returned)},
    {"purged", Json(chain.txs_purged)},
    {"pool_depth", Json(node_.pool_depth())},
  }));
  out.set("p2p", Json::object({
    {"bytes_in", Json(transport.bytes_in)},
    {"bytes_out", Json(transport.bytes_out)},
    {"peers", Json(node_.ready_peer_count())},
  }));
  const auto fin = node_.finality_info();
  out.set("finality", Json::object({
    {"enabled", Json(fin.enabled)},
    {"interval", Json(fin.interval)},
    {"finalized_height", Json(fin.finalized_height)},
    {"lag", Json(fin.lag)},
    {"latest_votes", Json(static_cast<std::uint64_t>(fin.latest_votes))},
    {"votes_sent", Json(chain.ckpt_votes_sent)},
    {"votes_received", Json(chain.ckpt_votes_received)},
    {"votes_accepted", Json(chain.ckpt_votes_accepted)},
    {"votes_rejected", Json(chain.ckpt_votes_rejected)},
    {"certificates", Json(chain.ckpt_certs_formed)},
    {"reorgs_refused", Json(chain.reorgs_refused_finality)},
  }));
  Json methods = Json::object({});  // {} even before any request
  for (const MethodMetrics& m : methods_) {
    if (m.requests->get() == 0 && m.errors->get() == 0) continue;
    const obs::live::Histogram::Snapshot snap = m.latency->snapshot();
    methods.set(m.name, Json::object({
      {"requests", Json(m.requests->get())},
      {"errors", Json(m.errors->get())},
      {"p50_ms", Json(snap.quantile_ns(0.50) / 1e6)},
      {"p99_ms", Json(snap.quantile_ns(0.99) / 1e6)},
    }));
  }
  const Stats rpc = stats();
  out.set("rpc", Json::object({
    {"requests", Json(rpc.requests)},
    {"errors", Json(rpc.errors)},
    {"methods", std::move(methods)},
  }));
  // Tx-lifecycle stage latencies (see obs/live/stage_tracker.h): count plus
  // estimated p50/p99 per transition, in milliseconds.
  Json stages;
  for (const auto& h : node_.live_registry().histogram_samples()) {
    std::string_view key;
    if (h.name == "themis_tx_stage_verify_seconds") key = "verify";
    else if (h.name == "themis_tx_stage_pool_seconds") key = "pool";
    else if (h.name == "themis_tx_stage_inclusion_seconds") key = "inclusion";
    else if (h.name == "themis_tx_stage_confirm_seconds") key = "confirm";
    else if (h.name == "themis_tx_e2e_seconds") key = "e2e";
    else continue;
    stages.set(std::string(key), Json::object({
      {"count", Json(h.snap.total)},
      {"mean_ms", Json(h.snap.mean_ns() / 1e6)},
      {"p50_ms", Json(h.snap.quantile_ns(0.50) / 1e6)},
      {"p99_ms", Json(h.snap.quantile_ns(0.99) / 1e6)},
    }));
  }
  out.set("stages", std::move(stages));
  out.set("health", Json::object({
    {"ready", Json(node_.ready())},
    {"uptime_seconds", Json(node_.uptime_seconds())},
  }));
  return out;
}

void Gateway::note_error(Method method) {
  methods_[static_cast<std::size_t>(method)].errors->inc();
  total_errors_->inc();
}

Gateway::Stats Gateway::stats() const {
  return Stats{total_requests_->get(), total_errors_->get()};
}

std::map<std::string, std::uint64_t> Gateway::method_counts() const {
  std::map<std::string, std::uint64_t> out;
  for (const MethodMetrics& m : methods_) {
    const std::uint64_t count = m.requests->get();
    if (count > 0) out[m.name] = count;
  }
  return out;
}

void Gateway::fill_observability(obs::Observability& obs) const {
  obs.counters.counter("rpc.requests") = total_requests_->get();
  obs.counters.counter("rpc.errors") = total_errors_->get();
  for (const MethodMetrics& m : methods_) {
    const std::uint64_t count = m.requests->get();
    if (count > 0) obs.counters.counter(std::string("rpc.method.") + m.name) = count;
  }
}

}  // namespace themis::rpc
