// Minimal JSON value + parser + serializer for the RPC gateway.
//
// The gateway speaks JSON-RPC over HTTP to clients we do not control, so the
// parser is written for hostile input: bounded recursion depth, strict
// grammar (no trailing commas, no comments, no bare values beyond the JSON
// spec), and every error is a typed exception the caller maps to a protocol
// error response — malformed bytes can never take a worker thread down.
//
// Numbers keep their best representation: integral literals that fit are
// stored exactly as uint64/int64 (account balances and nonces must round-trip
// exactly; doubles would corrupt them past 2^53), everything else as double.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace themis::rpc {

class JsonError : public std::runtime_error {
 public:
  explicit JsonError(const std::string& what) : std::runtime_error(what) {}
};

class Json {
 public:
  using Array = std::vector<Json>;
  /// Ordered map: serialization is deterministic (testable byte-for-byte).
  using Object = std::map<std::string, Json>;

  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool b) : value_(b) {}
  Json(std::uint64_t u) : value_(u) {}
  Json(std::int64_t i) : value_(i) {}
  Json(int i) : value_(static_cast<std::int64_t>(i)) {}
  Json(unsigned u) : value_(static_cast<std::uint64_t>(u)) {}
  Json(double d) : value_(d) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(std::string s) : value_(std::move(s)) {}
  Json(Array a) : value_(std::move(a)) {}
  Json(Object o) : value_(std::move(o)) {}

  static Json object(std::initializer_list<std::pair<const std::string, Json>> init) {
    return Json(Object(init));
  }
  static Json array(std::initializer_list<Json> init) {
    return Json(Array(init));
  }

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  bool is_bool() const { return std::holds_alternative<bool>(value_); }
  bool is_string() const { return std::holds_alternative<std::string>(value_); }
  bool is_array() const { return std::holds_alternative<Array>(value_); }
  bool is_object() const { return std::holds_alternative<Object>(value_); }
  bool is_number() const { return is_u64() || is_i64() || is_double(); }
  bool is_u64() const { return std::holds_alternative<std::uint64_t>(value_); }
  bool is_i64() const { return std::holds_alternative<std::int64_t>(value_); }
  bool is_double() const { return std::holds_alternative<double>(value_); }

  /// Typed accessors; throw JsonError on a type mismatch (the gateway maps
  /// that to "invalid params").
  bool as_bool() const;
  std::uint64_t as_u64() const;  ///< also accepts non-negative int64
  std::int64_t as_i64() const;
  double as_double() const;      ///< any number
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;

  /// Object field lookup; returns a shared null value when absent (so
  /// `params["nonce"].is_null()` reads naturally for optional fields).
  const Json& operator[](const std::string& key) const;
  bool has(const std::string& key) const;

  /// Mutable object insertion (creates/overwrites the field).
  Json& set(const std::string& key, Json value);

  bool operator==(const Json&) const = default;

  /// Compact serialization (no whitespace), deterministic field order.
  std::string dump() const;

  /// Strict parse of a complete JSON document.  Throws JsonError on any
  /// syntax error, trailing garbage, or nesting deeper than `max_depth`.
  static Json parse(std::string_view text, std::size_t max_depth = 64);

 private:
  std::variant<std::nullptr_t, bool, std::uint64_t, std::int64_t, double,
               std::string, Array, Object>
      value_;
};

}  // namespace themis::rpc
