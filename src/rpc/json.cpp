#include "rpc/json.h"

#include <array>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace themis::rpc {

namespace {

[[noreturn]] void fail(const std::string& what) { throw JsonError(what); }

const Json& null_json() {
  static const Json kNull;
  return kNull;
}

}  // namespace

bool Json::as_bool() const {
  if (const bool* b = std::get_if<bool>(&value_)) return *b;
  fail("expected bool");
}

std::uint64_t Json::as_u64() const {
  if (const auto* u = std::get_if<std::uint64_t>(&value_)) return *u;
  if (const auto* i = std::get_if<std::int64_t>(&value_)) {
    if (*i < 0) fail("expected unsigned integer, got negative");
    return static_cast<std::uint64_t>(*i);
  }
  fail("expected unsigned integer");
}

std::int64_t Json::as_i64() const {
  if (const auto* i = std::get_if<std::int64_t>(&value_)) return *i;
  if (const auto* u = std::get_if<std::uint64_t>(&value_)) {
    if (*u > static_cast<std::uint64_t>(INT64_MAX)) fail("integer overflow");
    return static_cast<std::int64_t>(*u);
  }
  fail("expected integer");
}

double Json::as_double() const {
  if (const auto* d = std::get_if<double>(&value_)) return *d;
  if (const auto* u = std::get_if<std::uint64_t>(&value_)) {
    return static_cast<double>(*u);
  }
  if (const auto* i = std::get_if<std::int64_t>(&value_)) {
    return static_cast<double>(*i);
  }
  fail("expected number");
}

const std::string& Json::as_string() const {
  if (const auto* s = std::get_if<std::string>(&value_)) return *s;
  fail("expected string");
}

const Json::Array& Json::as_array() const {
  if (const auto* a = std::get_if<Array>(&value_)) return *a;
  fail("expected array");
}

const Json::Object& Json::as_object() const {
  if (const auto* o = std::get_if<Object>(&value_)) return *o;
  fail("expected object");
}

const Json& Json::operator[](const std::string& key) const {
  const auto* o = std::get_if<Object>(&value_);
  if (o == nullptr) return null_json();
  const auto it = o->find(key);
  return it == o->end() ? null_json() : it->second;
}

bool Json::has(const std::string& key) const {
  const auto* o = std::get_if<Object>(&value_);
  return o != nullptr && o->contains(key);
}

Json& Json::set(const std::string& key, Json value) {
  if (!std::holds_alternative<Object>(value_)) value_ = Object{};
  std::get<Object>(value_)[key] = std::move(value);
  return *this;
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

namespace {

void dump_string(const std::string& s, std::string& out) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);  // UTF-8 passes through untouched
        }
    }
  }
  out.push_back('"');
}

void dump_value(const Json& v, std::string& out);

void dump_number(double d, std::string& out) {
  if (!std::isfinite(d)) {
    out += "null";  // JSON has no Inf/NaN; null is the conventional fallback
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", d);
  out += buf;
}

void dump_value(const Json& v, std::string& out) {
  if (v.is_null()) {
    out += "null";
  } else if (v.is_bool()) {
    out += v.as_bool() ? "true" : "false";
  } else if (v.is_string()) {
    dump_string(v.as_string(), out);
  } else if (v.is_array()) {
    out.push_back('[');
    bool first = true;
    for (const Json& item : v.as_array()) {
      if (!first) out.push_back(',');
      first = false;
      dump_value(item, out);
    }
    out.push_back(']');
  } else if (v.is_object()) {
    out.push_back('{');
    bool first = true;
    for (const auto& [key, item] : v.as_object()) {
      if (!first) out.push_back(',');
      first = false;
      dump_string(key, out);
      out.push_back(':');
      dump_value(item, out);
    }
    out.push_back('}');
  } else if (v.is_u64()) {
    out += std::to_string(v.as_u64());
  } else if (v.is_i64()) {
    out += std::to_string(v.as_i64());
  } else {
    dump_number(v.as_double(), out);
  }
}

}  // namespace

std::string Json::dump() const {
  std::string out;
  dump_value(*this, out);
  return out;
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

namespace {

class Parser {
 public:
  Parser(std::string_view text, std::size_t max_depth)
      : text_(text), max_depth_(max_depth) {}

  Json parse_document() {
    Json value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON document");
    return value;
  }

 private:
  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }
  char next() {
    const char c = peek();
    ++pos_;
    return c;
  }
  void expect(char c) {
    if (next() != c) fail(std::string("expected '") + c + "'");
  }
  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }
  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Json parse_value() {
    if (++depth_ > max_depth_) fail("nesting too deep");
    skip_ws();
    const char c = peek();
    Json out;
    switch (c) {
      case '{': out = parse_object(); break;
      case '[': out = parse_array(); break;
      case '"': out = Json(parse_string()); break;
      case 't':
        if (!consume_literal("true")) fail("invalid literal");
        out = Json(true);
        break;
      case 'f':
        if (!consume_literal("false")) fail("invalid literal");
        out = Json(false);
        break;
      case 'n':
        if (!consume_literal("null")) fail("invalid literal");
        out = Json(nullptr);
        break;
      default:
        out = parse_number();
    }
    --depth_;
    return out;
  }

  Json parse_object() {
    expect('{');
    Json::Object object;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(object));
    }
    while (true) {
      skip_ws();
      if (peek() != '"') fail("expected object key");
      std::string key = parse_string();
      skip_ws();
      expect(':');
      object[std::move(key)] = parse_value();
      skip_ws();
      const char c = next();
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}' in object");
    }
    return Json(std::move(object));
  }

  Json parse_array() {
    expect('[');
    Json::Array array;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(array));
    }
    while (true) {
      array.push_back(parse_value());
      skip_ws();
      const char c = next();
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']' in array");
    }
    return Json(std::move(array));
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = next();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char esc = next();
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          std::uint32_t cp = parse_hex4();
          if (cp >= 0xd800 && cp <= 0xdbff) {
            // High surrogate: must be followed by \uDC00-\uDFFF.
            if (next() != '\\' || next() != 'u') fail("unpaired surrogate");
            const std::uint32_t lo = parse_hex4();
            if (lo < 0xdc00 || lo > 0xdfff) fail("invalid low surrogate");
            cp = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
          } else if (cp >= 0xdc00 && cp <= 0xdfff) {
            fail("unpaired surrogate");
          }
          append_utf8(cp, out);
          break;
        }
        default:
          fail("invalid escape sequence");
      }
    }
  }

  std::uint32_t parse_hex4() {
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = next();
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        fail("invalid \\u escape");
      }
    }
    return value;
  }

  static void append_utf8(std::uint32_t cp, std::string& out) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xc0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xe0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
    } else {
      out.push_back(static_cast<char>(0xf0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3f)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    bool negative = false;
    bool integral = true;
    if (peek() == '-') {
      negative = true;
      ++pos_;
    }
    if (!std::isdigit(static_cast<unsigned char>(peek()))) {
      fail("invalid number");
    }
    const std::size_t int_start = pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ - int_start > 1 && text_[int_start] == '0') {
      fail("invalid number");  // JSON forbids leading zeros
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      integral = false;
      ++pos_;
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        fail("invalid number");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        fail("invalid number");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    if (integral) {
      if (negative) {
        std::int64_t value = 0;
        const auto [ptr, ec] =
            std::from_chars(token.data(), token.data() + token.size(), value);
        if (ec == std::errc() && ptr == token.data() + token.size()) {
          return Json(value);
        }
      } else {
        std::uint64_t value = 0;
        const auto [ptr, ec] =
            std::from_chars(token.data(), token.data() + token.size(), value);
        if (ec == std::errc() && ptr == token.data() + token.size()) {
          return Json(value);
        }
      }
      // Out of 64-bit range: fall through to double.
    }
    double value = 0.0;
    const auto [ptr, ec] =
        std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec != std::errc() || ptr != token.data() + token.size()) {
      fail("invalid number");
    }
    return Json(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t depth_ = 0;
  std::size_t max_depth_;
};

}  // namespace

Json Json::parse(std::string_view text, std::size_t max_depth) {
  return Parser(text, max_depth).parse_document();
}

}  // namespace themis::rpc
