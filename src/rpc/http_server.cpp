#include "rpc/http_server.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <charconv>
#include <chrono>
#include <utility>

namespace themis::rpc {

namespace {

constexpr std::size_t kRecvChunk = 4096;
/// Stall-sweep cadence; granularity of the slowloris guard.
constexpr int kSweepIntervalMs = 100;

std::string status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Payload Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Status";
  }
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

/// Serialize one response to wire bytes.  `close` sets Connection: close.
std::string serialize_response(const HttpResponse& response, bool close) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    status_text(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  out += close ? "Connection: close\r\n" : "Connection: keep-alive\r\n";
  out += "\r\n";
  out += response.body;
  return out;
}

std::string error_response(int status, const std::string& message) {
  HttpResponse response;
  response.status = status;
  response.body = "{\"error\":\"" + message + "\"}";
  return serialize_response(response, /*close=*/true);
}

/// Parse "METHOD SP target SP HTTP/1.x" + header lines out of `head`.
bool parse_head(const std::string& head, HttpRequest& request) {
  std::size_t pos = head.find("\r\n");
  if (pos == std::string::npos) return false;
  const std::string request_line = head.substr(0, pos);

  const std::size_t sp1 = request_line.find(' ');
  if (sp1 == std::string::npos) return false;
  const std::size_t sp2 = request_line.find(' ', sp1 + 1);
  if (sp2 == std::string::npos) return false;
  request.method = request_line.substr(0, sp1);
  request.target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string version = request_line.substr(sp2 + 1);
  if (version != "HTTP/1.1" && version != "HTTP/1.0") return false;
  if (request.method.empty() || request.target.empty()) return false;

  pos += 2;
  while (pos < head.size()) {
    const std::size_t eol = head.find("\r\n", pos);
    if (eol == std::string::npos) return false;
    if (eol == pos) break;  // blank line: end of headers
    const std::string line = head.substr(pos, eol - pos);
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) return false;
    std::string name = lower(line.substr(0, colon));
    std::string value = line.substr(colon + 1);
    // Trim optional whitespace around the value.
    const std::size_t first = value.find_first_not_of(" \t");
    const std::size_t last = value.find_last_not_of(" \t");
    value = first == std::string::npos
                ? std::string()
                : value.substr(first, last - first + 1);
    request.headers[std::move(name)] = std::move(value);
    pos = eol + 2;
  }
  return true;
}

}  // namespace

HttpServer::HttpServer(HttpServerConfig config, Handler handler)
    : config_(config), handler_(std::move(handler)) {}

HttpServer::~HttpServer() { stop(); }

bool HttpServer::start() {
  if (started_) return true;
  if (!listener_.listen(config_.port)) return false;
  listener_.set_nonblocking(true);

  epoll_fd_ = ::epoll_create1(0);
  event_fd_ = ::eventfd(0, EFD_NONBLOCK);
  if (epoll_fd_ < 0 || event_fd_ < 0) {
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    if (event_fd_ >= 0) ::close(event_fd_);
    epoll_fd_ = event_fd_ = -1;
    listener_.close();
    return false;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = 0;  // listener
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listener_.fd(), &ev);
  ev.data.u64 = 1;  // completion wakeup
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, event_fd_, &ev);

  pool_ = std::make_unique<TaskPool>(std::max<std::size_t>(config_.workers, 1));
  stopping_.store(false);
  reactor_thread_ = std::thread([this] { reactor_loop(); });
  started_ = true;
  return true;
}

void HttpServer::stop() {
  if (!started_) return;
  stopping_.store(true);
  const std::uint64_t one = 1;
  [[maybe_unused]] const auto n = ::write(event_fd_, &one, sizeof(one));
  if (reactor_thread_.joinable()) reactor_thread_.join();
  // Workers may still be finishing handlers; they only touch the completion
  // queue and the eventfd, both still alive.  Join them before closing fds.
  pool_.reset();
  {
    std::lock_guard<std::mutex> lock(completions_mu_);
    completions_.clear();
  }
  conns_.clear();  // closes every connection socket
  ::close(event_fd_);
  ::close(epoll_fd_);
  event_fd_ = epoll_fd_ = -1;
  listener_.close();
  started_ = false;
}

HttpServer::Stats HttpServer::stats() const {
  Stats out;
  out.connections_accepted = stat_connections_.load();
  out.requests = stat_requests_.load();
  out.bad_requests = stat_bad_requests_.load();
  out.oversized_bodies = stat_oversized_.load();
  out.rejected_busy = stat_busy_.load();
  return out;
}

std::int64_t HttpServer::now_ms() const {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void HttpServer::update_epoll(Conn& conn, bool want_read, bool want_write) {
  epoll_event ev{};
  ev.events = (want_read ? EPOLLIN : 0u) | (want_write ? EPOLLOUT : 0u);
  ev.data.u64 = conn.id;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.socket.fd(), &ev);
}

void HttpServer::drop(std::uint64_t conn_id) {
  const auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, it->second->socket.fd(), nullptr);
  conns_.erase(it);  // closes the socket
}

void HttpServer::reactor_loop() {
  std::int64_t last_sweep = now_ms();
  std::vector<epoll_event> events(64);
  while (!stopping_.load()) {
    const int n =
        ::epoll_wait(epoll_fd_, events.data(),
                     static_cast<int>(events.size()), kSweepIntervalMs);
    if (stopping_.load()) break;
    for (int i = 0; i < n; ++i) {
      const std::uint64_t key = events[i].data.u64;
      if (key == 0) {
        accept_ready();
        continue;
      }
      if (key == 1) {
        std::uint64_t drain = 0;
        [[maybe_unused]] const auto r =
            ::read(event_fd_, &drain, sizeof(drain));
        apply_completions();
        continue;
      }
      const auto it = conns_.find(key);
      if (it == conns_.end()) continue;  // dropped earlier this wakeup
      Conn& conn = *it->second;
      bool alive = true;
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0 &&
          (events[i].events & EPOLLIN) == 0) {
        alive = false;
      }
      if (alive && (events[i].events & EPOLLIN) != 0) {
        alive = conn_readable(conn);
      }
      if (alive && (events[i].events & EPOLLOUT) != 0 &&
          conn.state == ConnState::writing) {
        alive = flush(conn);
      }
      if (!alive) drop(key);
    }
    const std::int64_t now = now_ms();
    if (now - last_sweep >= kSweepIntervalMs) {
      last_sweep = now;
      sweep_stalled();
    }
  }
}

void HttpServer::accept_ready() {
  for (;;) {
    auto socket = listener_.accept_nonblocking();
    if (!socket.has_value()) return;
    stat_connections_.fetch_add(1);
    socket->set_nodelay(true);

    auto conn = std::make_unique<Conn>();
    conn->id = next_conn_id_++;
    conn->socket = std::move(*socket);
    conn->last_activity_ms = now_ms();

    epoll_event ev{};
    ev.data.u64 = conn->id;
    if (conns_.size() >= config_.max_connections) {
      // Load shed: queue one 503, flush it, close.
      stat_busy_.fetch_add(1);
      conn->out = error_response(503, "too many connections");
      conn->close_after_write = true;
      conn->state = ConnState::writing;
      ev.events = EPOLLOUT;
    } else {
      ev.events = EPOLLIN;
    }
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, conn->socket.fd(), &ev);
    const std::uint64_t id = conn->id;
    conns_.emplace(id, std::move(conn));
    if (conns_[id]->state == ConnState::writing && !flush(*conns_[id])) {
      drop(id);
    }
  }
}

bool HttpServer::conn_readable(Conn& conn) {
  std::uint8_t chunk[kRecvChunk];
  for (;;) {
    const int n = conn.socket.recv_some(chunk, sizeof chunk);
    if (n > 0) {
      conn.in.append(reinterpret_cast<const char*>(chunk),
                     static_cast<std::size_t>(n));
      conn.last_activity_ms = now_ms();
      continue;
    }
    if (n == -1) break;  // drained
    if (n == 0) {
      // Peer finished sending.  A complete buffered request still gets its
      // response (flushed below) — anything less is an abandoned request.
      conn.peer_half_closed = true;
      break;
    }
    return false;  // hard error
  }
  if (conn.state != ConnState::reading) {
    // Bytes for a future pipelined request arrived while a request is in
    // flight; keep them buffered.  (EPOLLIN is off in dispatched state, but
    // a read may still race the transition within one wakeup.)
    return !conn.peer_half_closed || conn.state != ConnState::reading;
  }
  if (!advance(conn)) return false;
  // EOF with no dispatched/queued response left means the peer abandoned a
  // partial request (or was simply done): drop.
  if (conn.peer_half_closed && conn.state == ConnState::reading) return false;
  return true;
}

bool HttpServer::advance(Conn& conn) {
  while (conn.state == ConnState::reading) {
    if (!conn.reading_body) {
      const std::size_t head_end = conn.in.find("\r\n\r\n");
      if (head_end == std::string::npos) {
        if (conn.in.size() > config_.max_head_bytes) {
          stat_bad_requests_.fetch_add(1);
          start_write(conn, error_response(400, "request head too large"),
                      /*close=*/true);
          return flush(conn);
        }
        return true;  // need more bytes
      }
      conn.request = HttpRequest{};
      if (!parse_head(conn.in.substr(0, head_end + 2), conn.request)) {
        stat_bad_requests_.fetch_add(1);
        start_write(conn, error_response(400, "malformed request"),
                    /*close=*/true);
        return flush(conn);
      }
      conn.in.erase(0, head_end + 4);
      conn.content_length = 0;
      if (const auto it = conn.request.headers.find("content-length");
          it != conn.request.headers.end()) {
        const auto [ptr, ec] =
            std::from_chars(it->second.data(),
                            it->second.data() + it->second.size(),
                            conn.content_length);
        if (ec != std::errc() ||
            ptr != it->second.data() + it->second.size()) {
          stat_bad_requests_.fetch_add(1);
          start_write(conn, error_response(400, "bad content-length"),
                      /*close=*/true);
          return flush(conn);
        }
      }
      if (conn.content_length > config_.max_body_bytes) {
        // We cannot cheaply skip an oversized body, so reject and close.
        stat_oversized_.fetch_add(1);
        start_write(conn, error_response(413, "body too large"),
                    /*close=*/true);
        return flush(conn);
      }
      conn.reading_body = true;
    }

    if (conn.in.size() < conn.content_length) return true;  // need more bytes

    conn.request.body = conn.in.substr(0, conn.content_length);
    conn.in.erase(0, conn.content_length);
    conn.reading_body = false;

    const bool client_close = [&] {
      const auto it = conn.request.headers.find("connection");
      return it != conn.request.headers.end() && lower(it->second) == "close";
    }();

    // Dispatch: the reactor stops reading this connection (one request in
    // flight per connection; pipelined successors wait in `in`) and a worker
    // runs the handler, which may block.
    stat_requests_.fetch_add(1);
    conn.state = ConnState::dispatched;
    update_epoll(conn, /*want_read=*/false, /*want_write=*/false);
    const std::uint64_t conn_id = conn.id;
    const bool close = client_close || conn.peer_half_closed;
    HttpRequest request = std::move(conn.request);
    conn.request = HttpRequest{};
    pool_->submit([this, conn_id, request = std::move(request), close] {
      HttpResponse response;
      try {
        response = handler_(request);
      } catch (...) {
        response.status = 500;
        response.body = "{\"error\":\"internal error\"}";
      }
      {
        std::lock_guard<std::mutex> lock(completions_mu_);
        completions_.push_back(
            Completion{conn_id, serialize_response(response, close), close});
      }
      const std::uint64_t one = 1;
      [[maybe_unused]] const auto n = ::write(event_fd_, &one, sizeof(one));
    });
    return true;
  }
  return true;
}

void HttpServer::start_write(Conn& conn, std::string bytes, bool close) {
  conn.out = std::move(bytes);
  conn.out_off = 0;
  conn.close_after_write = close;
  conn.state = ConnState::writing;
  conn.last_activity_ms = now_ms();
}

bool HttpServer::flush(Conn& conn) {
  while (conn.out_off < conn.out.size()) {
    const int n = conn.socket.send_some(
        ByteSpan(reinterpret_cast<const std::uint8_t*>(conn.out.data()) +
                     conn.out_off,
                 conn.out.size() - conn.out_off));
    if (n > 0) {
      conn.out_off += static_cast<std::size_t>(n);
      conn.last_activity_ms = now_ms();
      continue;
    }
    if (n == -1) {
      // Socket buffer full: wait for EPOLLOUT.
      update_epoll(conn, /*want_read=*/false, /*want_write=*/true);
      return true;
    }
    return false;  // peer gone
  }
  // Response fully flushed.
  conn.out.clear();
  conn.out_off = 0;
  if (conn.close_after_write || conn.peer_half_closed) return false;
  conn.state = ConnState::reading;
  conn.last_activity_ms = now_ms();
  update_epoll(conn, /*want_read=*/true, /*want_write=*/false);
  // Pipelined keep-alive: the next request may already be buffered.
  return advance(conn);
}

void HttpServer::apply_completions() {
  std::vector<Completion> batch;
  {
    std::lock_guard<std::mutex> lock(completions_mu_);
    batch.swap(completions_);
  }
  for (Completion& done : batch) {
    const auto it = conns_.find(done.conn_id);
    if (it == conns_.end()) continue;  // connection died while handling
    Conn& conn = *it->second;
    if (conn.state != ConnState::dispatched) continue;
    start_write(conn, std::move(done.bytes), done.close);
    if (!flush(conn)) drop(done.conn_id);
  }
}

void HttpServer::sweep_stalled() {
  const std::int64_t now = now_ms();
  std::vector<std::uint64_t> doomed;
  for (const auto& [id, conn] : conns_) {
    // Idle keep-alive (nothing buffered, nothing in flight) may park
    // forever; a connection mid-request or mid-response that has made no
    // progress for a full timeout is a slowloris candidate.
    const bool mid_request =
        conn->state == ConnState::reading &&
        (conn->reading_body || !conn->in.empty());
    const bool mid_response = conn->state == ConnState::writing;
    if ((mid_request || mid_response) &&
        now - conn->last_activity_ms >= config_.recv_timeout_ms) {
      doomed.push_back(id);
    }
  }
  for (const std::uint64_t id : doomed) drop(id);
}

}  // namespace themis::rpc
