#include "rpc/http_server.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <utility>

namespace themis::rpc {

namespace {

constexpr std::size_t kRecvChunk = 4096;

std::string status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Payload Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Status";
  }
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

/// Serialize and send one response.  `close` sets Connection: close.
bool send_response(p2p::TcpSocket& socket, const HttpResponse& response,
                   bool close) {
  std::string head = "HTTP/1.1 " + std::to_string(response.status) + " " +
                     status_text(response.status) + "\r\n";
  head += "Content-Type: " + response.content_type + "\r\n";
  head += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  head += close ? "Connection: close\r\n" : "Connection: keep-alive\r\n";
  head += "\r\n";
  if (!socket.send_all(ByteSpan(
          reinterpret_cast<const std::uint8_t*>(head.data()), head.size()))) {
    return false;
  }
  return socket.send_all(
      ByteSpan(reinterpret_cast<const std::uint8_t*>(response.body.data()),
               response.body.size()));
}

/// Parse "METHOD SP target SP HTTP/1.x" + header lines out of `head`.
bool parse_head(const std::string& head, HttpRequest& request) {
  std::size_t pos = head.find("\r\n");
  if (pos == std::string::npos) return false;
  const std::string request_line = head.substr(0, pos);

  const std::size_t sp1 = request_line.find(' ');
  if (sp1 == std::string::npos) return false;
  const std::size_t sp2 = request_line.find(' ', sp1 + 1);
  if (sp2 == std::string::npos) return false;
  request.method = request_line.substr(0, sp1);
  request.target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string version = request_line.substr(sp2 + 1);
  if (version != "HTTP/1.1" && version != "HTTP/1.0") return false;
  if (request.method.empty() || request.target.empty()) return false;

  pos += 2;
  while (pos < head.size()) {
    const std::size_t eol = head.find("\r\n", pos);
    if (eol == std::string::npos) return false;
    if (eol == pos) break;  // blank line: end of headers
    const std::string line = head.substr(pos, eol - pos);
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) return false;
    std::string name = lower(line.substr(0, colon));
    std::string value = line.substr(colon + 1);
    // Trim optional whitespace around the value.
    const std::size_t first = value.find_first_not_of(" \t");
    const std::size_t last = value.find_last_not_of(" \t");
    value = first == std::string::npos
                ? std::string()
                : value.substr(first, last - first + 1);
    request.headers[std::move(name)] = std::move(value);
    pos = eol + 2;
  }
  return true;
}

}  // namespace

HttpServer::HttpServer(HttpServerConfig config, Handler handler)
    : config_(config), handler_(std::move(handler)) {}

HttpServer::~HttpServer() { stop(); }

bool HttpServer::start() {
  if (started_) return true;
  if (!listener_.listen(config_.port)) return false;
  stopping_.store(false);
  accept_thread_ = std::thread([this] { accept_loop(); });
  started_ = true;
  return true;
}

void HttpServer::stop() {
  if (!started_) return;
  stopping_.store(true);
  listener_.interrupt();
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.close();
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& conn : conns_) conn->socket.shutdown();
    for (auto& conn : conns_) {
      if (conn->thread.joinable()) conn->thread.join();
    }
    conns_.clear();
  }
  started_ = false;
}

HttpServer::Stats HttpServer::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

void HttpServer::reap_locked() {
  for (auto it = conns_.begin(); it != conns_.end();) {
    if ((*it)->done.load()) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

void HttpServer::accept_loop() {
  while (!stopping_.load()) {
    auto socket = listener_.accept();
    if (!socket.has_value()) {
      if (stopping_.load()) return;
      continue;
    }
    socket->set_timeouts(config_.recv_timeout_ms, config_.recv_timeout_ms);
    socket->set_nodelay(true);

    std::lock_guard<std::mutex> lock(conns_mu_);
    reap_locked();
    {
      std::lock_guard<std::mutex> stats_lock(stats_mu_);
      ++stats_.connections_accepted;
    }
    if (conns_.size() >= config_.max_connections) {
      // Load shed inline: one response, then close.
      HttpResponse busy;
      busy.status = 503;
      busy.body = "{\"error\":\"too many connections\"}";
      send_response(*socket, busy, /*close=*/true);
      std::lock_guard<std::mutex> stats_lock(stats_mu_);
      ++stats_.rejected_busy;
      continue;
    }
    auto conn = std::make_unique<Conn>();
    conn->socket = std::move(*socket);
    Conn* raw = conn.get();
    conn->thread = std::thread([this, raw] { serve(raw); });
    conns_.push_back(std::move(conn));
  }
}

void HttpServer::serve(Conn* conn) {
  std::string buffer;
  std::uint8_t chunk[kRecvChunk];

  while (!stopping_.load()) {
    // --- read the request head -------------------------------------------
    std::size_t head_end;
    while ((head_end = buffer.find("\r\n\r\n")) == std::string::npos) {
      if (buffer.size() > config_.max_head_bytes) {
        HttpResponse response;
        response.status = 400;
        response.body = "{\"error\":\"request head too large\"}";
        send_response(conn->socket, response, /*close=*/true);
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.bad_requests;
        conn->done.store(true);
        return;
      }
      const int n = conn->socket.recv_some(chunk, sizeof chunk);
      if (n > 0) {
        buffer.append(reinterpret_cast<const char*>(chunk),
                      static_cast<std::size_t>(n));
        continue;
      }
      if (n == -1 && buffer.empty() && !stopping_.load()) {
        continue;  // idle keep-alive connection: keep waiting
      }
      // Orderly close, hard error, stop, or a stalled partial request.
      conn->done.store(true);
      return;
    }

    HttpRequest request;
    if (!parse_head(buffer.substr(0, head_end + 2), request)) {
      HttpResponse response;
      response.status = 400;
      response.body = "{\"error\":\"malformed request\"}";
      send_response(conn->socket, response, /*close=*/true);
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.bad_requests;
      conn->done.store(true);
      return;
    }
    buffer.erase(0, head_end + 4);

    // --- read the body ----------------------------------------------------
    std::size_t content_length = 0;
    if (const auto it = request.headers.find("content-length");
        it != request.headers.end()) {
      const auto [ptr, ec] = std::from_chars(
          it->second.data(), it->second.data() + it->second.size(),
          content_length);
      if (ec != std::errc() || ptr != it->second.data() + it->second.size()) {
        HttpResponse response;
        response.status = 400;
        response.body = "{\"error\":\"bad content-length\"}";
        send_response(conn->socket, response, /*close=*/true);
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.bad_requests;
        conn->done.store(true);
        return;
      }
    }
    if (content_length > config_.max_body_bytes) {
      // We cannot cheaply skip an oversized body, so reject and close.
      HttpResponse response;
      response.status = 413;
      response.body = "{\"error\":\"body too large\"}";
      send_response(conn->socket, response, /*close=*/true);
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.oversized_bodies;
      conn->done.store(true);
      return;
    }
    while (buffer.size() < content_length) {
      const int n = conn->socket.recv_some(chunk, sizeof chunk);
      if (n <= 0) {  // timeout mid-body counts as a stall: drop
        conn->done.store(true);
        return;
      }
      buffer.append(reinterpret_cast<const char*>(chunk),
                    static_cast<std::size_t>(n));
    }
    request.body = buffer.substr(0, content_length);
    buffer.erase(0, content_length);

    const bool client_close =
        [&] {
          const auto it = request.headers.find("connection");
          return it != request.headers.end() && lower(it->second) == "close";
        }();

    // --- dispatch ---------------------------------------------------------
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.requests;
    }
    HttpResponse response = handler_(request);
    if (!send_response(conn->socket, response, client_close) || client_close) {
      conn->done.store(true);
      return;
    }
  }
  conn->done.store(true);
}

}  // namespace themis::rpc
