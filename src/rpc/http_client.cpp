#include "rpc/http_client.h"

#include <algorithm>
#include <cctype>
#include <charconv>

namespace themis::rpc {

namespace {
constexpr std::size_t kRecvChunk = 4096;
constexpr std::size_t kMaxResponseBytes = 8 * (1 << 20);
}  // namespace

HttpClient::HttpClient(std::string host, std::uint16_t port, int timeout_ms)
    : host_(std::move(host)), port_(port), timeout_ms_(timeout_ms) {}

bool HttpClient::ensure_connected() {
  if (socket_.valid()) return true;
  buffer_.clear();
  socket_ = p2p::TcpSocket::connect(host_, port_, timeout_ms_);
  if (!socket_.valid()) return false;
  socket_.set_timeouts(timeout_ms_, timeout_ms_);
  socket_.set_nodelay(true);
  return true;
}

std::optional<HttpResult> HttpClient::post(const std::string& target,
                                           const std::string& body) {
  std::string request = "POST " + target + " HTTP/1.1\r\n";
  request += "Host: " + host_ + "\r\n";
  request += "Content-Type: application/json\r\n";
  request += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  request += "\r\n";
  request += body;
  return roundtrip(request);
}

std::optional<HttpResult> HttpClient::get(const std::string& target) {
  std::string request = "GET " + target + " HTTP/1.1\r\n";
  request += "Host: " + host_ + "\r\n";
  request += "\r\n";
  return roundtrip(request);
}

std::optional<HttpResult> HttpClient::roundtrip(const std::string& request) {
  // One retry: a keep-alive connection the server closed between requests
  // looks like a send/recv failure on the first attempt.
  for (int attempt = 0; attempt < 2; ++attempt) {
    if (!ensure_connected()) continue;
    if (!socket_.send_all(ByteSpan(
            reinterpret_cast<const std::uint8_t*>(request.data()),
            request.size()))) {
      socket_.close();
      continue;
    }
    auto result = read_response();
    if (result.has_value()) return result;
    socket_.close();
  }
  return std::nullopt;
}

std::optional<HttpResult> HttpClient::read_response() {
  std::uint8_t chunk[kRecvChunk];
  std::size_t head_end;
  while ((head_end = buffer_.find("\r\n\r\n")) == std::string::npos) {
    if (buffer_.size() > kMaxResponseBytes) return std::nullopt;
    const int n = socket_.recv_some(chunk, sizeof chunk);
    if (n <= 0) return std::nullopt;  // timeout/close/error mid-response
    buffer_.append(reinterpret_cast<const char*>(chunk),
                   static_cast<std::size_t>(n));
  }
  const std::string head = buffer_.substr(0, head_end + 2);

  // Status line: HTTP/1.1 NNN Reason
  HttpResult result;
  const std::size_t sp = head.find(' ');
  if (sp == std::string::npos || head.size() < sp + 4) return std::nullopt;
  const auto [ptr, ec] =
      std::from_chars(head.data() + sp + 1, head.data() + sp + 4, result.status);
  if (ec != std::errc()) return std::nullopt;

  // Content-Length (case-insensitive scan of header lines).
  std::size_t content_length = 0;
  std::size_t pos = head.find("\r\n") + 2;
  while (pos < head.size()) {
    const std::size_t eol = head.find("\r\n", pos);
    if (eol == std::string::npos || eol == pos) break;
    std::string line = head.substr(pos, eol - pos);
    std::transform(line.begin(), line.end(), line.begin(), [](unsigned char c) {
      return static_cast<char>(std::tolower(c));
    });
    if (line.rfind("content-length:", 0) == 0) {
      std::string value = line.substr(15);
      const std::size_t first = value.find_first_not_of(" \t");
      if (first != std::string::npos) value = value.substr(first);
      const auto [p, e] = std::from_chars(value.data(),
                                          value.data() + value.size(),
                                          content_length);
      (void)p;
      if (e != std::errc()) return std::nullopt;
    }
    pos = eol + 2;
  }
  if (content_length > kMaxResponseBytes) return std::nullopt;

  buffer_.erase(0, head_end + 4);
  while (buffer_.size() < content_length) {
    const int n = socket_.recv_some(chunk, sizeof chunk);
    if (n <= 0) return std::nullopt;
    buffer_.append(reinterpret_cast<const char*>(chunk),
                   static_cast<std::size_t>(n));
  }
  result.body = buffer_.substr(0, content_length);
  buffer_.erase(0, content_length);
  return result;
}

}  // namespace themis::rpc
