// A blocking keep-alive HTTP/1.1 client for themis-cli and the load
// generator.  One instance = one connection; not thread-safe (each load-gen
// worker owns its own client, which is exactly the keep-alive behaviour the
// benchmark wants to measure).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "p2p/socket.h"

namespace themis::rpc {

struct HttpResult {
  int status = 0;
  std::string body;
};

class HttpClient {
 public:
  HttpClient(std::string host, std::uint16_t port, int timeout_ms = 5000);

  /// POST `body` to `target` (Content-Type: application/json).  Reconnects
  /// once on a dead keep-alive connection.  nullopt = transport failure.
  std::optional<HttpResult> post(const std::string& target,
                                 const std::string& body);
  std::optional<HttpResult> get(const std::string& target);

  bool connected() const { return socket_.valid(); }
  void close() { socket_.close(); }

 private:
  bool ensure_connected();
  std::optional<HttpResult> roundtrip(const std::string& request);
  std::optional<HttpResult> read_response();

  std::string host_;
  std::uint16_t port_;
  int timeout_ms_;
  p2p::TcpSocket socket_;
  std::string buffer_;  ///< bytes past the previous response
};

}  // namespace themis::rpc
